// Tests of the adaptive-control subsystem (src/adapt): the telemetry bus
// accounting, the epoch feedback controller's three loops (page shares,
// ahead_ratio, bandwidth caps), the fleet feedback weights/re-placement
// signal, the new bursty/churn workload generators, and the cluster-level
// feedback rounds.
#include <gtest/gtest.h>

#include "adapt/controller.h"
#include "adapt/fleet_feedback.h"
#include "adapt/telemetry.h"
#include "model/model_zoo.h"
#include "runtime/workload.h"
#include "serve/cluster.h"
#include "sim/experiment.h"

namespace camdn {
namespace {

// ---- telemetry bus ---------------------------------------------------

TEST(telemetry, counters_accumulate_and_cut_resets) {
    adapt::telemetry_bus bus(2);
    bus.on_cache_access(0, true);
    bus.on_cache_access(0, false);
    bus.on_dma_bytes(1, 4096);
    bus.on_page_wait(1, 500);
    bus.on_layer_retired(0, 100, 150, true);

    adapt::telemetry_bus::cut_sample s;
    s.dram_bytes = 1 << 20;
    s.peak_bytes_per_cycle = 16.0;
    s.idle_pages = 7;
    const auto& snap = bus.cut(1000, s);

    EXPECT_EQ(snap.index, 0u);
    EXPECT_EQ(snap.start, 0u);
    EXPECT_EQ(snap.end, 1000u);
    EXPECT_EQ(snap.tasks[0].cache_hits, 1u);
    EXPECT_EQ(snap.tasks[0].cache_misses, 1u);
    EXPECT_EQ(snap.tasks[0].layers_retired, 1u);
    EXPECT_EQ(snap.tasks[0].lbm_layers, 1u);
    EXPECT_EQ(snap.tasks[1].dma_bytes, 4096u);
    EXPECT_EQ(snap.tasks[1].page_wait_cycles, 500u);
    EXPECT_EQ(snap.idle_pages, 7u);
    EXPECT_EQ(snap.active_slots, 2u);
    EXPECT_DOUBLE_EQ(snap.bw_utilization,
                     static_cast<double>(1 << 20) / (16.0 * 1000.0));

    // The cut opened a fresh epoch.
    EXPECT_FALSE(bus.open_epoch_active());
    const auto& snap2 = bus.cut(2000, {});
    EXPECT_EQ(snap2.index, 1u);
    EXPECT_EQ(snap2.start, 1000u);
    EXPECT_EQ(snap2.tasks[0].cache_hits, 0u);
    EXPECT_EQ(snap2.active_slots, 0u);
}

TEST(telemetry, out_of_range_slots_are_ignored) {
    adapt::telemetry_bus bus(1);
    bus.on_cache_access(no_task, true);
    bus.on_dma_bytes(5, 100);
    bus.on_page_timeout(-3, true);
    const auto& snap = bus.cut(10, {});
    EXPECT_EQ(snap.tasks[0].cache_hits, 0u);
    EXPECT_EQ(snap.tasks[0].dma_bytes, 0u);
    EXPECT_EQ(snap.total_timeouts(), 0u);
}

TEST(telemetry, completion_slack_is_signed) {
    adapt::telemetry_bus bus(1);
    bus.on_completion(0, 150, 100);  // 50 late
    bus.on_completion(0, 80, 100);   // 20 early
    bus.on_completion(0, 99, never); // no deadline: slack untouched
    const auto& snap = bus.cut(200, {});
    EXPECT_EQ(snap.tasks[0].completions, 3u);
    EXPECT_EQ(snap.tasks[0].deadline_completions, 2u);
    EXPECT_EQ(snap.tasks[0].deadline_misses, 1u);
    EXPECT_EQ(snap.tasks[0].slack_cycles, -30);
}

// ---- feedback controller ---------------------------------------------

adapt::epoch_snapshot snapshot(std::uint32_t slots, cycle_t span = 100'000) {
    adapt::epoch_snapshot s;
    s.start = 0;
    s.end = span;
    s.tasks.resize(slots);
    return s;
}

TEST(controller, idle_slots_widen_the_page_share) {
    adapt::controller_config cfg;
    cfg.active_smoothing = 1.0;  // react instantly for the test
    adapt::feedback_controller ctl(cfg, 4, 400, 0.2);
    EXPECT_EQ(ctl.action().page_share[0], 100u);  // equal split initially

    auto snap = snapshot(4);
    snap.tasks[0].layers_retired = 3;  // only slot 0 active
    snap.active_slots = 1;
    const auto& a = ctl.on_epoch(snap);
    EXPECT_EQ(a.page_share[0], 400u);  // whole pool for the lone tenant

    auto busy = snapshot(4);
    for (auto& t : busy.tasks) t.layers_retired = 1;
    busy.active_slots = 4;
    const auto& b = ctl.on_epoch(busy);
    EXPECT_EQ(b.page_share[0], 100u);  // burst returns to the equal split
}

TEST(controller, ahead_grows_only_with_spare_capacity_and_quiet_waits) {
    adapt::controller_config cfg;
    adapt::feedback_controller ctl(cfg, 4, 400, 0.2);

    // Quiet epoch, all slots active: baseline regime, hold.
    auto full = snapshot(4);
    for (auto& t : full.tasks) t.layers_retired = 1;
    full.active_slots = 4;
    EXPECT_DOUBLE_EQ(ctl.on_epoch(full).ahead_ratio, 0.2);

    // Quiet epoch with idle slots: grow.
    auto lull = snapshot(4);
    lull.tasks[0].layers_retired = 1;
    lull.active_slots = 1;
    const double grown = ctl.on_epoch(lull).ahead_ratio;
    EXPECT_GT(grown, 0.2);
    EXPECT_LE(grown, cfg.ahead_max);
}

TEST(controller, ahead_backs_off_to_baseline_on_timeouts_never_below) {
    adapt::controller_config cfg;
    adapt::feedback_controller ctl(cfg, 4, 400, 0.2);

    auto lull = snapshot(4);
    lull.tasks[0].layers_retired = 1;
    lull.active_slots = 1;
    for (int i = 0; i < 10; ++i) ctl.on_epoch(lull);
    EXPECT_DOUBLE_EQ(ctl.action().ahead_ratio, cfg.ahead_max);

    auto contended = snapshot(4);
    for (auto& t : contended.tasks) {
        t.layers_retired = 1;
        t.page_timeouts = 2;
    }
    contended.active_slots = 4;
    for (int i = 0; i < 10; ++i) ctl.on_epoch(contended);
    EXPECT_DOUBLE_EQ(ctl.action().ahead_ratio, 0.2);  // floored at baseline
}

TEST(controller, bandwidth_caps_need_observed_slack) {
    adapt::controller_config cfg;
    adapt::feedback_controller ctl(cfg, 2, 400, 0.2);

    // Skewed traffic but no deadline observations: stays inert.
    auto snap = snapshot(2);
    snap.tasks[0].layers_retired = 1;
    snap.tasks[0].dma_bytes = 10'000'000;
    snap.tasks[1].layers_retired = 1;
    snap.tasks[1].dma_bytes = 100'000;
    snap.active_slots = 2;
    const auto& a = ctl.on_epoch(snap);
    EXPECT_DOUBLE_EQ(a.bw_share[0], 0.0);
    EXPECT_DOUBLE_EQ(a.bw_share[1], 0.0);

    // The light slot is now late on its deadline: the hog gets capped.
    snap.tasks[1].completions = 1;
    snap.tasks[1].deadline_completions = 1;
    snap.tasks[1].deadline_misses = 1;
    snap.tasks[1].slack_cycles = -1000;
    const auto& b = ctl.on_epoch(snap);
    EXPECT_GT(b.bw_share[0], 0.0);
    EXPECT_DOUBLE_EQ(b.bw_share[1], 0.0);  // the victim stays unregulated
}

TEST(controller, decision_path_is_deterministic) {
    adapt::controller_config cfg;
    adapt::feedback_controller a(cfg, 4, 400, 0.2);
    adapt::feedback_controller b(cfg, 4, 400, 0.2);
    for (int i = 0; i < 5; ++i) {
        auto snap = snapshot(4);
        snap.tasks[i % 4].layers_retired = 1;
        snap.tasks[i % 4].page_wait_cycles = 100 * i;
        snap.active_slots = 1;
        const auto& x = a.on_epoch(snap);
        const auto& y = b.on_epoch(snap);
        EXPECT_DOUBLE_EQ(x.ahead_ratio, y.ahead_ratio);
        EXPECT_EQ(x.page_share, y.page_share);
        EXPECT_EQ(x.bw_share, y.bw_share);
    }
}

// ---- fleet feedback --------------------------------------------------

adapt::soc_rollup rollup(double wait, double sla, std::uint64_t dropped = 0) {
    adapt::soc_rollup r;
    r.completed = 10;
    r.dropped = dropped;
    r.page_wait_frac = wait;
    r.sla_rate = sla;
    return r;
}

TEST(fleet_feedback, pressure_shifts_weights_away_from_hot_socs) {
    adapt::fleet_feedback fb({}, 2);
    fb.observe({rollup(0.05, 1.0), rollup(0.0, 1.0)});
    EXPECT_GT(fb.weights()[0], fb.weights()[1]);
    EXPECT_GT(fb.weights()[0], 1.0);
    EXPECT_LT(fb.weights()[1], 1.0);
}

TEST(fleet_feedback, weights_stay_clamped) {
    adapt::fleet_feedback_config cfg;
    cfg.pressure_gain = 100.0;
    adapt::fleet_feedback fb(cfg, 2);
    for (int i = 0; i < 20; ++i)
        fb.observe({rollup(0.5, 0.0, 50), rollup(0.0, 1.0)});
    EXPECT_LE(fb.weights()[0], cfg.weight_max);
    EXPECT_GE(fb.weights()[1], cfg.weight_min);
}

TEST(fleet_feedback, replacement_fires_after_patience_and_resets) {
    adapt::fleet_feedback_config cfg;
    cfg.sla_target = 0.9;
    cfg.replace_patience = 2;
    adapt::fleet_feedback fb(cfg, 2);

    fb.observe({rollup(0.0, 0.5), rollup(0.0, 1.0)});
    EXPECT_FALSE(fb.replacement_due());
    fb.observe({rollup(0.0, 0.5), rollup(0.0, 1.0)});
    EXPECT_TRUE(fb.replacement_due());
    // Consuming the signal reset the streaks.
    EXPECT_FALSE(fb.replacement_due());

    // A healthy round in between breaks the streak.
    fb.observe({rollup(0.0, 0.5), rollup(0.0, 1.0)});
    fb.observe({rollup(0.0, 1.0), rollup(0.0, 1.0)});
    fb.observe({rollup(0.0, 0.5), rollup(0.0, 1.0)});
    EXPECT_FALSE(fb.replacement_due());
}

TEST(fleet_feedback, rollup_from_counts_sla_against_table1_targets) {
    sim::experiment_result res;
    sim::inference_record fast;
    fast.abbr = "MB.";
    fast.arrival = 0;
    fast.start = 0;
    fast.end = ms_to_cycles(0.1);  // well within any target
    res.completions.push_back(fast);
    sim::inference_record slow = fast;
    slow.end = ms_to_cycles(10'000.0);  // misses every target
    res.completions.push_back(slow);
    res.rejected_arrivals = 2;  // drops count as misses

    const auto r = adapt::rollup_from(res, 1.0);
    EXPECT_EQ(r.completed, 2u);
    EXPECT_EQ(r.dropped, 2u);
    EXPECT_EQ(r.deadline_met, 1u);
    EXPECT_DOUBLE_EQ(r.sla_rate, 0.25);
}

// ---- bursty / churn workload generators ------------------------------

sim::experiment_config mmpp_cfg() {
    sim::experiment_config cfg;
    cfg.pol = sim::policy::camdn_full;
    cfg.kind = runtime::workload_kind::open_loop_mmpp;
    cfg.workload = {&model::model_by_abbr("MB.")};
    cfg.co_located = 2;
    cfg.arrival_rate_per_ms = 4.0;
    cfg.mmpp_rate_scale = {0.25, 4.0};
    cfg.mmpp_sojourn_ms = 2.0;
    cfg.total_arrivals = 12;
    cfg.seed = 5;
    return cfg;
}

TEST(workload_adapt, mmpp_is_deterministic_and_serves_all_when_unbounded) {
    auto cfg = mmpp_cfg();
    cfg.admission_queue_limit = runtime::unbounded_queue;
    const auto a = sim::run_experiment(cfg);
    const auto b = sim::run_experiment(cfg);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.completions.size(), 12u);
    EXPECT_EQ(a.rejected_arrivals, 0u);
}

TEST(workload_adapt, mmpp_burstiness_exceeds_plain_poisson) {
    // Same mean rate, same arrival count: the modulated stream must show a
    // higher maximum short-window arrival density than the flat one.
    auto bursty = mmpp_cfg();
    bursty.total_arrivals = 64;
    bursty.admission_queue_limit = runtime::unbounded_queue;
    auto flat = bursty;
    flat.kind = runtime::workload_kind::open_loop_poisson;

    auto density = [](const sim::experiment_result& res) {
        // Max arrivals within any 1 ms window of the completion records.
        std::vector<cycle_t> at;
        for (const auto& rec : res.completions) at.push_back(rec.arrival);
        std::sort(at.begin(), at.end());
        std::size_t best = 0;
        for (std::size_t i = 0; i < at.size(); ++i) {
            std::size_t j = i;
            while (j < at.size() && at[j] - at[i] <= ms_to_cycles(1.0)) ++j;
            best = std::max(best, j - i);
        }
        return best;
    };
    const auto bres = sim::run_experiment(bursty);
    const auto fres = sim::run_experiment(flat);
    EXPECT_GT(density(bres), density(fres));
}

TEST(workload_adapt, tenant_churn_rotates_the_active_set) {
    sim::experiment_config cfg;
    cfg.pol = sim::policy::camdn_full;
    cfg.kind = runtime::workload_kind::tenant_churn;
    cfg.workload = {&model::model_by_abbr("MB."), &model::model_by_abbr("EF."),
                    &model::model_by_abbr("RS."), &model::model_by_abbr("VT.")};
    cfg.co_located = 2;
    cfg.arrival_rate_per_ms = 2.0;
    cfg.churn_interval_ms = 4.0;
    cfg.churn_active_models = 2;
    cfg.total_arrivals = 24;
    cfg.admission_queue_limit = runtime::unbounded_queue;
    cfg.seed = 11;

    const auto res = sim::run_experiment(cfg);
    EXPECT_EQ(res.completions.size(), 24u);
    // Early phase serves only the first window; over the whole run more
    // than churn_active_models distinct tenants appear.
    std::set<std::string> all;
    for (const auto& rec : res.completions) all.insert(rec.abbr);
    EXPECT_GT(all.size(), 2u);

    const auto again = sim::run_experiment(cfg);
    EXPECT_EQ(res.makespan, again.makespan);
}

// ---- cluster feedback rounds -----------------------------------------

serve::cluster_config feedback_cluster() {
    serve::soc_instance_config inst;
    inst.pol = sim::policy::camdn_adaptive;
    inst.slots = 2;
    inst.admission_queue_limit = 8;
    auto cfg = serve::uniform_cluster(3, inst);
    cfg.models = {&model::model_by_abbr("MB."), &model::model_by_abbr("RS.")};
    cfg.process = serve::arrival_process::mmpp;
    cfg.arrival_rate_per_ms = 4.0;
    cfg.total_arrivals = 36;
    cfg.feedback_rounds = 3;
    cfg.threads = 2;
    return cfg;
}

TEST(cluster_feedback, rounds_are_deterministic_across_pool_widths) {
    auto cfg = feedback_cluster();
    const auto a = serve::run_cluster(cfg);
    cfg.threads = 1;
    const auto b = serve::run_cluster(cfg);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.dropped_queue, b.dropped_queue);
    EXPECT_EQ(a.replacements, b.replacements);
    ASSERT_EQ(a.route_weights.size(), b.route_weights.size());
    for (std::size_t s = 0; s < a.route_weights.size(); ++s)
        EXPECT_DOUBLE_EQ(a.route_weights[s], b.route_weights[s]);
    EXPECT_DOUBLE_EQ(a.fleet_latency_ms.p99(), b.fleet_latency_ms.p99());
}

TEST(cluster_feedback, round_major_per_soc_results_and_weights_exported) {
    const auto cfg = feedback_cluster();
    const auto res = serve::run_cluster(cfg);
    EXPECT_EQ(res.per_soc.size(), cfg.socs.size() * cfg.feedback_rounds);
    EXPECT_EQ(res.route_weights.size(), cfg.socs.size());
    EXPECT_EQ(res.arrivals, cfg.total_arrivals);
    // Telemetry recording is implied by feedback rounds.
    bool any_epochs = false;
    for (const auto& r : res.per_soc) any_epochs |= !r.telemetry.empty();
    EXPECT_TRUE(any_epochs);
}

TEST(cluster_feedback, single_round_stays_single_shot) {
    auto cfg = feedback_cluster();
    cfg.feedback_rounds = 1;
    const auto res = serve::run_cluster(cfg);
    EXPECT_EQ(res.per_soc.size(), cfg.socs.size());
    EXPECT_TRUE(res.route_weights.empty());
    EXPECT_EQ(res.replacements, 0u);
}

// ---- warm-carry feedback rounds (scheduler snapshots) ----------------

serve::cluster_config warmth_cluster() {
    serve::soc_instance_config inst;
    // MoCA keeps all traffic on the transparent path, so carried cache
    // warmth is directly visible in the telemetry hit counters.
    inst.pol = sim::policy::moca;
    inst.slots = 2;
    inst.admission_queue_limit = 32;
    auto cfg = serve::uniform_cluster(2, inst);
    cfg.models = {&model::model_by_abbr("MB.")};
    cfg.arrival_rate_per_ms = 2.0;
    cfg.total_arrivals = 24;
    cfg.feedback_rounds = 2;
    cfg.threads = 2;
    return cfg;
}

/// Transparent hit rate of the first telemetry epoch of round 2, summed
/// over the fleet (per_soc is round-major).
double round2_first_epoch_hit_rate(const serve::cluster_result& res,
                                   std::size_t socs) {
    std::uint64_t hits = 0, misses = 0;
    for (std::size_t s = 0; s < socs; ++s) {
        const auto& r = res.per_soc[socs + s];
        if (r.telemetry.empty()) continue;
        for (const auto& c : r.telemetry.front().tasks) {
            hits += c.cache_hits;
            misses += c.cache_misses;
        }
    }
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
}

TEST(cluster_feedback, warm_carry_preserves_cache_warmth_across_rounds) {
    const auto cfg = warmth_cluster();
    const auto warm = serve::run_cluster(cfg);  // carry_soc_state default on

    auto cold_cfg = cfg;
    cold_cfg.carry_soc_state = false;  // PR 3 cold-restart behavior
    const auto cold = serve::run_cluster(cold_cfg);

    // Round 1 is cold in both runs and must be identical.
    const std::size_t S = cfg.socs.size();
    ASSERT_EQ(warm.per_soc.size(), 2 * S);
    ASSERT_EQ(cold.per_soc.size(), 2 * S);
    for (std::size_t s = 0; s < S; ++s) {
        EXPECT_EQ(warm.per_soc[s].makespan, cold.per_soc[s].makespan);
        EXPECT_EQ(warm.per_soc[s].completions.size(),
                  cold.per_soc[s].completions.size());
    }

    // Round 2 starts on carried cache state: its first epoch's hit rate
    // must beat the cold restart's.
    const double warm_rate = round2_first_epoch_hit_rate(warm, S);
    const double cold_rate = round2_first_epoch_hit_rate(cold, S);
    EXPECT_GT(warm_rate, cold_rate);

    // The carried clock keeps per-SoC makespans monotone across rounds.
    for (std::size_t s = 0; s < S; ++s)
        if (!warm.per_soc[S + s].completions.empty())
            EXPECT_GE(warm.per_soc[S + s].makespan, warm.per_soc[s].makespan);
}

TEST(cluster_feedback, warm_carry_deterministic_across_pool_widths) {
    auto cfg = warmth_cluster();
    const auto a = serve::run_cluster(cfg);
    cfg.threads = 1;
    const auto b = serve::run_cluster(cfg);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.dropped_queue, b.dropped_queue);
    EXPECT_DOUBLE_EQ(a.fleet_latency_ms.p99(), b.fleet_latency_ms.p99());
    ASSERT_EQ(a.per_soc.size(), b.per_soc.size());
    for (std::size_t i = 0; i < a.per_soc.size(); ++i) {
        EXPECT_EQ(a.per_soc[i].makespan, b.per_soc[i].makespan);
        EXPECT_EQ(a.per_soc[i].completions.size(),
                  b.per_soc[i].completions.size());
        EXPECT_EQ(a.per_soc[i].telemetry.size(), b.per_soc[i].telemetry.size());
    }
}

// ---- proactive re-placement on traffic-mix drift ----------------------

TEST(fleet_feedback, mix_divergence_is_zero_on_plan_and_grows_with_drift) {
    const std::vector<double> planned{1.0, 1.0, 1.0, 1.0};
    // Observed exactly on plan: divergence ~0 (only smoothing noise).
    EXPECT_LT(adapt::fleet_feedback::mix_divergence(planned,
                                                    {100, 100, 100, 100}),
              1e-3);
    // Mild drift < heavy drift, and both are finite and non-negative.
    const double mild =
        adapt::fleet_feedback::mix_divergence(planned, {150, 100, 100, 50});
    const double heavy =
        adapt::fleet_feedback::mix_divergence(planned, {380, 10, 5, 5});
    EXPECT_GT(mild, 0.0);
    EXPECT_GT(heavy, mild);
    // Zero counts and zero weights are safe (smoothing keeps it finite).
    EXPECT_GE(adapt::fleet_feedback::mix_divergence({0.0, 1.0}, {50, 0}),
              0.0);
    EXPECT_EQ(adapt::fleet_feedback::mix_divergence({}, {}), 0.0);
}

TEST(fleet_feedback, drift_replan_respects_threshold_and_disable) {
    adapt::fleet_feedback_config cfg;
    cfg.mix_kl_threshold = 0.0;  // disabled
    adapt::fleet_feedback off(cfg, 2);
    EXPECT_FALSE(off.drift_replan_due({1.0, 1.0}, {400, 4}));

    cfg.mix_kl_threshold = 0.05;
    adapt::fleet_feedback on(cfg, 2);
    EXPECT_TRUE(on.drift_replan_due({1.0, 1.0}, {400, 4}));
    EXPECT_FALSE(on.drift_replan_due({1.0, 1.0}, {100, 100}));
}

TEST(cluster_feedback, kl_drift_triggers_proactive_replacement) {
    // The placement is planned for a uniform mix, but the served stream is
    // heavily skewed — without any SLA streak, the KL trigger must re-plan
    // proactively (and deterministically).
    serve::soc_instance_config inst;
    inst.slots = 2;
    auto cfg = serve::uniform_cluster(2, inst);
    cfg.models = {&model::model_by_abbr("MB."), &model::model_by_abbr("EF."),
                  &model::model_by_abbr("RS.")};
    // plan_placement sees the uniform default because the skew arrives via
    // the drawn stream; with a weighted share the router observes a mix
    // far from the all-ones planned_mix baseline only when traffic_share
    // itself is skewed — so skew it and give the drift trigger a planned
    // baseline it cannot match: observed follows {8,1,1}, planned starts
    // as the normalized weights, and per-round sampling noise on 2 models
    // dominating the stream keeps KL well above a tight threshold.
    cfg.traffic_share = {8.0, 1.0, 1.0};
    cfg.arrival_rate_per_ms = 2.0;
    cfg.total_arrivals = 64;
    cfg.seed = 13;
    cfg.feedback_rounds = 4;
    cfg.feedback.sla_target = 0.0;        // SLA streak can never fire
    cfg.feedback.mix_kl_threshold = 0.01; // tight: sampling drift trips it
    cfg.threads = 1;
    const auto res = serve::run_cluster(cfg);
    EXPECT_GE(res.drift_replacements, 1u);
    EXPECT_GE(res.replacements, res.drift_replacements);

    // Deterministic across pool widths, like every cluster path.
    auto wide = cfg;
    wide.threads = 4;
    const auto res2 = serve::run_cluster(wide);
    EXPECT_EQ(res.replacements, res2.replacements);
    EXPECT_EQ(res.drift_replacements, res2.drift_replacements);
    EXPECT_EQ(res.completed, res2.completed);
    EXPECT_EQ(res.makespan, res2.makespan);

    // Disabled threshold: no proactive re-plans on the same stream.
    auto off = cfg;
    off.feedback.mix_kl_threshold = 0.0;
    EXPECT_EQ(serve::run_cluster(off).drift_replacements, 0u);
}

}  // namespace
}  // namespace camdn

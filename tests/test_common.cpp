// Unit tests for the common substrate: event queue, RNG, statistics,
// table printing and unit helpers.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

#include "common/event_queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/types.h"

namespace camdn {
namespace {

// ---- types.h helpers ----

TEST(types, ceil_div_basics) {
    EXPECT_EQ(ceil_div(0, 4), 0u);
    EXPECT_EQ(ceil_div(1, 4), 1u);
    EXPECT_EQ(ceil_div(4, 4), 1u);
    EXPECT_EQ(ceil_div(5, 4), 2u);
    EXPECT_EQ(ceil_div(8, 4), 2u);
}

TEST(types, round_up) {
    EXPECT_EQ(round_up(0, 64), 0u);
    EXPECT_EQ(round_up(1, 64), 64u);
    EXPECT_EQ(round_up(64, 64), 64u);
    EXPECT_EQ(round_up(65, 64), 128u);
}

TEST(types, lines_for_covers_partial_lines) {
    EXPECT_EQ(lines_for(0), 0u);
    EXPECT_EQ(lines_for(1), 1u);
    EXPECT_EQ(lines_for(64), 1u);
    EXPECT_EQ(lines_for(65), 2u);
    EXPECT_EQ(lines_for(kib(32)), 512u);
}

TEST(types, unit_helpers) {
    EXPECT_EQ(kib(1), 1024u);
    EXPECT_EQ(mib(1), 1024u * 1024);
    EXPECT_EQ(mib(16) / kib(32), 512u);  // pages in a 16 MiB cache
}

TEST(types, time_conversions_round_trip) {
    EXPECT_DOUBLE_EQ(cycles_to_ms(ms_to_cycles(6.7)), 6.7);
    EXPECT_EQ(ms_to_cycles(1.0), 1'000'000u);
    EXPECT_EQ(us_to_cycles(1.0), 1'000u);
}

TEST(types, saturating_arithmetic_clamps_to_never) {
    EXPECT_EQ(sat_add(3, 4), 7u);
    EXPECT_EQ(sat_add(never, 1), never);
    EXPECT_EQ(sat_add(never - 1, 1), never);
    EXPECT_EQ(sat_add(never - 1, 2), never);
    EXPECT_EQ(sat_add(0, never), never);

    EXPECT_EQ(sat_mul(3, 4), 12u);
    EXPECT_EQ(sat_mul(never, 0), 0u);
    EXPECT_EQ(sat_mul(0, never), 0u);
    EXPECT_EQ(sat_mul(never, 1), never);
    EXPECT_EQ(sat_mul(never / 2 + 1, 2), never);
    EXPECT_EQ(sat_mul(never / 2, 2), never - 1);  // largest exact even case
}

// ---- event queue ----

TEST(event_queue, runs_in_time_order) {
    event_queue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(event_queue, fifo_among_equal_timestamps) {
    event_queue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(event_queue, scheduling_in_past_clamps_to_now) {
    event_queue eq;
    cycle_t seen = 0;
    eq.schedule(100, [&] {
        eq.schedule(50, [&] { seen = eq.now(); });  // in the past
    });
    eq.run();
    EXPECT_EQ(seen, 100u);
}

TEST(event_queue, run_until_leaves_later_events) {
    event_queue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run_until(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(event_queue, nested_scheduling_from_callbacks) {
    event_queue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5) eq.schedule_after(10, recurse);
    };
    eq.schedule(0, recurse);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(event_queue, step_returns_false_when_empty) {
    event_queue eq;
    EXPECT_FALSE(eq.step());
    EXPECT_TRUE(eq.empty());
}

TEST(event_queue, run_respects_max_events) {
    event_queue eq;
    int fired = 0;
    for (int i = 0; i < 10; ++i) eq.schedule(i, [&] { ++fired; });
    EXPECT_EQ(eq.run(3), 3u);
    EXPECT_EQ(fired, 3);
}

TEST(event_queue, cancelled_timer_neither_runs_nor_advances_the_clock) {
    event_queue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    auto timer = eq.schedule_cancellable(100, [&] { fired += 100; });
    EXPECT_TRUE(timer.armed());
    EXPECT_EQ(timer.when(), 100u);
    timer.cancel();
    EXPECT_FALSE(timer.armed());
    eq.run();
    EXPECT_EQ(fired, 1);
    // The cancelled entry was discarded silently: the clock stops at the
    // last live event instead of being dragged to cycle 100.
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_TRUE(eq.empty());
}

TEST(event_queue, uncancelled_timer_fires_once_and_disarms) {
    event_queue eq;
    int fired = 0;
    auto timer = eq.schedule_cancellable(5, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(timer.armed());
    timer.cancel();  // after firing: harmless no-op
    EXPECT_EQ(eq.now(), 5u);
}

TEST(event_queue, next_time_skips_cancelled_entries) {
    event_queue eq;
    auto t1 = eq.schedule_cancellable(3, [] {});
    eq.schedule(7, [] {});
    EXPECT_EQ(eq.next_time(), 3u);
    t1.cancel();
    EXPECT_EQ(eq.next_time(), 7u);
    eq.run();
    EXPECT_EQ(eq.next_time(), never);
}

TEST(event_queue, restored_events_replay_saved_tie_break_order) {
    // Two runs: one schedules A then B at the same cycle; the other
    // restores them in the opposite call order but under the saved
    // sequence numbers — execution order must match the original.
    std::string order;
    event_queue eq;
    eq.restore_now(50);
    eq.schedule_restored(60, /*seq=*/7, [&] { order += 'B'; });
    eq.schedule_restored(60, /*seq=*/3, [&] { order += 'A'; });
    eq.restore_next_seq(8);
    eq.schedule(60, [&] { order += 'C'; });  // gets seq 8: runs last
    eq.run();
    EXPECT_EQ(order, "ABC");
    EXPECT_EQ(eq.now(), 60u);
}

TEST(event_queue, restore_now_moves_the_clock_of_an_empty_queue) {
    event_queue eq;
    eq.restore_now(1234);
    EXPECT_EQ(eq.now(), 1234u);
    int fired = 0;
    eq.schedule(1000, [&] { ++fired; });  // past: clamps to restored now
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 1234u);
}

// ---- typed events ----

TEST(event_queue, typed_events_dispatch_to_their_channel_in_seq_order) {
    event_queue eq;
    std::string order;
    eq.set_handler(event_channel::dma, [&](const typed_event& ev) {
        order += 'd';
        order += static_cast<char>('0' + ev.a);
    });
    eq.set_handler(event_channel::layer,
                   [&](const typed_event& ev) { order += 'L'; (void)ev; });
    // Interleave closures and typed events at one cycle: the shared
    // sequence counter orders them exactly by scheduling order.
    eq.schedule(10, [&] { order += 'c'; });
    eq.schedule_event(10, typed_event{0, 0, 1, 0});  // dma, a=1
    eq.schedule_event(10, typed_event{1, 0, 0, 0});  // layer
    eq.schedule(10, [&] { order += 'c'; });
    eq.schedule_event(5, typed_event{0, 0, 2, 0});   // dma, earlier cycle
    eq.run();
    EXPECT_EQ(order, "d2cd1Lc");
}

TEST(event_queue, typed_events_round_trip_through_save_restore) {
    event_queue eq;
    std::string order;
    auto wire = [&order](event_queue& q) {
        q.set_handler(event_channel::dma, [&order](const typed_event& ev) {
            order += 'd';
            order += static_cast<char>('0' + ev.a);
        });
        q.set_handler(event_channel::sched, [&order](const typed_event& ev) {
            order += 's';
            order += static_cast<char>('0' + ev.b);
        });
    };
    wire(eq);
    eq.schedule_event(30, typed_event{0, 0, 1, 0});
    eq.schedule_event(20, typed_event{2, 0, 0, 7});
    eq.schedule_event(30, typed_event{0, 0, 2, 0});
    EXPECT_EQ(eq.pending_typed(), 3u);
    EXPECT_EQ(eq.pending_closures(), 0u);

    snapshot_writer w;
    eq.save_typed(w);
    const auto bytes = w.take();

    // A second save must produce identical bytes (sorted, not heap order).
    snapshot_writer w2;
    eq.save_typed(w2);
    EXPECT_EQ(bytes, w2.bytes());

    event_queue fresh;
    wire(fresh);
    fresh.restore_now(10);
    {
        snapshot_reader r(bytes);
        fresh.restore_typed(r);
        EXPECT_TRUE(r.done());
    }
    fresh.restore_next_seq(eq.next_seq());
    fresh.run();
    EXPECT_EQ(order.substr(0, 0), "");  // original queue never ran
    EXPECT_EQ(order, "s7d1d2");
    EXPECT_EQ(fresh.now(), 30u);
}

TEST(event_queue, typed_restore_rejects_unknown_channels) {
    snapshot_writer w;
    w.u64(1);       // one event
    w.u64(10);      // when
    w.u64(0);       // seq
    w.u8(200);      // bogus channel
    w.u8(0);        // kind
    w.u64(0);       // a
    w.u64(0);       // b
    const auto bytes = w.take();
    event_queue eq;
    snapshot_reader r(bytes);
    EXPECT_THROW(eq.restore_typed(r), snapshot_error);
}

TEST(event_queue, typed_dispatch_without_handler_throws) {
    event_queue eq;
    eq.schedule_event(1, typed_event{1, 0, 0, 0});  // layer: no handler
    EXPECT_THROW(eq.run(), std::logic_error);
}

// ---- rng ----

TEST(rng, deterministic_for_fixed_seed) {
    rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(rng, different_seeds_differ) {
    rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(rng, next_below_is_in_range) {
    rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 8ull, 1000ull}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
    }
}

TEST(rng, next_double_in_unit_interval) {
    rng r(99);
    double sum = 0.0;
    for (int i = 0; i < 10'000; ++i) {
        const double x = r.next_double();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);  // unbiased mean
}

TEST(rng, next_below_roughly_uniform) {
    rng r(5);
    std::vector<int> buckets(8, 0);
    for (int i = 0; i < 8000; ++i) ++buckets[r.next_below(8)];
    for (int b : buckets) EXPECT_NEAR(b, 1000, 150);
}

// ---- stats ----

TEST(running_stat, tracks_count_mean_min_max) {
    running_stat s;
    s.add(2.0);
    s.add(4.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(running_stat, weighted_mean) {
    running_stat s;
    s.add(1.0, 3.0);
    s.add(5.0, 1.0);
    EXPECT_DOUBLE_EQ(s.mean(), (3.0 + 5.0) / 4.0);
}

TEST(running_stat, empty_is_zero) {
    running_stat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(bucket_histogram, buckets_are_half_open_upper_inclusive) {
    bucket_histogram h({1.0, 4.0, 8.0});
    h.add(1.0);   // bucket 0 (<= 1)
    h.add(1.5);   // bucket 1
    h.add(4.0);   // bucket 1 (upper bound inclusive)
    h.add(5.0);   // bucket 2
    h.add(100.0); // overflow bucket
    EXPECT_EQ(h.bucket_count(), 4u);
    EXPECT_DOUBLE_EQ(h.bucket_weight(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bucket_weight(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucket_weight(2), 1.0);
    EXPECT_DOUBLE_EQ(h.bucket_weight(3), 1.0);
}

TEST(bucket_histogram, weighted_fractions_sum_to_one) {
    bucket_histogram h({10.0, 20.0});
    h.add(5.0, 2.5);
    h.add(15.0, 7.5);
    h.add(25.0, 10.0);
    double total = 0.0;
    for (std::size_t i = 0; i < h.bucket_count(); ++i) total += h.fraction(i);
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.125);
}

TEST(bucket_histogram, empty_fractions_are_zero) {
    bucket_histogram h({1.0});
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
    EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
}

TEST(bucket_histogram, nan_samples_are_quarantined) {
    bucket_histogram h({1.0, 10.0});
    h.add(0.5);
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(std::numeric_limits<double>::quiet_NaN(), 3.0);
    h.add(5.0);
    // NaN never lands in a bucket (its comparisons all fail, which used
    // to drop it into bucket 0) and never inflates the total weight.
    EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.0);
    EXPECT_DOUBLE_EQ(h.nan_weight(), 4.0);
}

TEST(percentile_tracker, nearest_rank_quantiles) {
    percentile_tracker t;
    for (int v = 100; v >= 1; --v) t.add(v);  // 1..100, inserted descending
    EXPECT_EQ(t.count(), 100u);
    EXPECT_DOUBLE_EQ(t.p50(), 50.0);
    EXPECT_DOUBLE_EQ(t.p95(), 95.0);
    EXPECT_DOUBLE_EQ(t.p99(), 99.0);
    EXPECT_DOUBLE_EQ(t.min(), 1.0);
    EXPECT_DOUBLE_EQ(t.max(), 100.0);
    EXPECT_DOUBLE_EQ(t.mean(), 50.5);
}

TEST(percentile_tracker, empty_is_zero) {
    percentile_tracker t;
    EXPECT_TRUE(t.empty());
    EXPECT_DOUBLE_EQ(t.p50(), 0.0);
    EXPECT_DOUBLE_EQ(t.p99(), 0.0);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(percentile_tracker, single_sample_answers_every_quantile) {
    percentile_tracker t;
    t.add(7.5);
    EXPECT_DOUBLE_EQ(t.quantile(0.0), 7.5);
    EXPECT_DOUBLE_EQ(t.p50(), 7.5);
    EXPECT_DOUBLE_EQ(t.p99(), 7.5);
    EXPECT_DOUBLE_EQ(t.quantile(1.0), 7.5);
}

TEST(percentile_tracker, insertion_order_does_not_matter) {
    percentile_tracker a, b;
    const double xs[] = {3, 1, 4, 1, 5, 9, 2, 6};
    for (double x : xs) a.add(x);
    for (int i = 7; i >= 0; --i) b.add(xs[i]);
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
}

TEST(percentile_tracker, add_after_query_resorts) {
    percentile_tracker t;
    t.add(10.0);
    t.add(20.0);
    EXPECT_DOUBLE_EQ(t.max(), 20.0);
    t.add(5.0);  // arrives after a query sorted the buffer
    EXPECT_DOUBLE_EQ(t.min(), 5.0);
    EXPECT_DOUBLE_EQ(t.p50(), 10.0);
}

TEST(percentile_tracker, nan_samples_are_rejected_and_merge_carries_count) {
    percentile_tracker t;
    t.add(1.0);
    t.add(std::numeric_limits<double>::quiet_NaN());
    t.add(3.0);
    EXPECT_EQ(t.count(), 2u);
    EXPECT_EQ(t.nan_count(), 1u);
    // Quantiles see only the finite samples.
    EXPECT_DOUBLE_EQ(t.min(), 1.0);
    EXPECT_DOUBLE_EQ(t.max(), 3.0);

    percentile_tracker other;
    other.add(std::numeric_limits<double>::quiet_NaN());
    other.add(2.0);
    t.merge(other);
    EXPECT_EQ(t.count(), 3u);
    EXPECT_EQ(t.nan_count(), 2u);
    EXPECT_DOUBLE_EQ(t.p50(), 2.0);
}

TEST(percentile_tracker, merge_combines_samples) {
    percentile_tracker a, b;
    for (int v = 1; v <= 50; ++v) a.add(v);
    for (int v = 51; v <= 100; ++v) b.add(v);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_DOUBLE_EQ(a.p50(), 50.0);
    EXPECT_DOUBLE_EQ(a.p99(), 99.0);
    a.merge(percentile_tracker{});  // empty merge is a no-op
    EXPECT_EQ(a.count(), 100u);
}

TEST(fmt_fixed, formats_digits) {
    EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
    EXPECT_EQ(fmt_fixed(1.0, 0), "1");
    EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
}

// ---- table printer ----

TEST(table_printer, aligns_columns) {
    table_printer t({"a", "bbbb"});
    t.add_row({"xxxx", "y"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a     bbbb"), std::string::npos);
    EXPECT_NE(out.find("xxxx  y"), std::string::npos);
}

TEST(table_printer, tolerates_ragged_rows) {
    table_printer t({"h1", "h2"});
    t.add_row({"only-one"});
    t.add_row({"a", "b", "c"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
    EXPECT_NE(os.str().find("c"), std::string::npos);
}

}  // namespace
}  // namespace camdn

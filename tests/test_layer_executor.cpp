// Tests of the tile-level layer executor: the traffic it actually moves
// must agree with the mapping candidate's analytic prediction, and its
// pipelining must respect compute/memory bounds.
#include <gtest/gtest.h>

#include "mapping/layer_mapper.h"
#include "model/model_zoo.h"
#include "runtime/task.h"
#include "sim/address_map.h"
#include "sim/layer_executor.h"
#include "sim/mapping_registry.h"

namespace camdn::sim {
namespace {

struct rig {
    soc_config cfg{};
    soc machine;
    runtime::task task;
    address_map addrs{0, 1};

    explicit rig(policy pol = policy::camdn_full) : machine(cfg, pol) {}

    /// Prepares `task` to run layer `layer` of `abbr` with pages granted.
    const mapping::mapping_candidate& arm(const std::string& abbr,
                                          std::uint32_t layer,
                                          bool want_lbm = false) {
        const auto& m = model::model_by_abbr(abbr);
        const auto& mm = mapping_for(m, cfg.mapper());
        task.id = 0;
        task.mdl = &m;
        task.mapping = &mm;
        task.current_layer = layer;
        const mapping::mapping_candidate* cand =
            want_lbm && mm.tables[layer].lbm ? &*mm.tables[layer].lbm
                                             : &mm.tables[layer].lwm.back();
        if (cand->pages_needed > 0) {
            auto pages =
                machine.cache().pages().try_allocate(0, cand->pages_needed);
            auto& cpt = machine.cache().cpt(0);
            for (std::uint32_t v = 0; v < pages->size(); ++v)
                cpt.map(v, (*pages)[v]);
        }
        return *cand;
    }

    cycle_t run(const mapping::mapping_candidate& cand) {
        cycle_t end = 0;
        execute_layer(machine, camdn_features{}, task, cand, addrs,
                      [&](cycle_t done) { end = done; });
        machine.eq().run();
        return end;
    }
};

TEST(layer_executor, completes_and_reports_monotonic_time) {
    rig r;
    const auto& cand = r.arm("RS.", 2);
    const cycle_t end = r.run(cand);
    EXPECT_GT(end, 0u);
}

TEST(layer_executor, dram_traffic_matches_candidate_estimate) {
    // For a dense layer with pinned tensors, the executor's DRAM line
    // count must match the candidate's dram_bytes within chunk rounding.
    for (std::uint32_t layer : {2u, 5u, 10u}) {
        rig r;
        const auto& cand = r.arm("RS.", layer);
        r.run(cand);
        const double measured =
            static_cast<double>(r.machine.dram().stats().bytes());
        const double predicted = static_cast<double>(cand.dram_bytes());
        EXPECT_NEAR(measured, predicted, 0.05 * predicted + 64 * 1024)
            << "layer " << layer;
    }
}

TEST(layer_executor, streaming_candidate_traffic_matches_too) {
    rig r(policy::shared_baseline);
    const auto& m = model::model_by_abbr("RS.");
    const auto& mm = mapping_for(m, r.cfg.mapper());
    r.task.id = 0;
    r.task.mdl = &m;
    r.task.mapping = &mm;
    r.task.current_layer = 2;
    const auto& cand = mm.tables[2].minimal();
    r.run(cand);
    // Transparent path: misses fetch from DRAM; re-fetch passes may hit in
    // cache, so measured DRAM is at most the prediction (plus writebacks).
    EXPECT_LE(r.machine.dram().stats().reads * line_bytes,
              cand.dram_read_bytes + mib(1));
    EXPECT_GT(r.machine.dram().stats().reads, 0u);
}

TEST(layer_executor, lbm_layer_produces_no_output_dram) {
    rig r;
    // A mid-block MobileNet layer: input and output both region-resident.
    const auto& m = model::model_by_abbr("MB.");
    const auto& mm = mapping_for(m, r.cfg.mapper());
    std::uint32_t mid = 0;
    for (std::uint32_t i = 0; i < m.layers.size(); ++i) {
        if (mm.tables[i].lbm && !mm.is_block_head(i) && !mm.is_block_tail(i)) {
            mid = i;
            break;
        }
    }
    ASSERT_GT(mid, 0u);
    const auto& cand = r.arm("MB.", mid, /*want_lbm=*/true);
    ASSERT_TRUE(cand.is_lbm);
    r.run(cand);
    // Line-granular DMA rounds each tile chunk up to a cache line.
    EXPECT_NEAR(static_cast<double>(r.machine.dram().stats().bytes()),
                static_cast<double>(cand.dram_bytes()), 4096.0)
        << "LBM layer must only stream its parameters";
    EXPECT_GT(r.machine.cache().stats().region_writes, 0u);
}

TEST(layer_executor, latency_at_least_compute_bound) {
    rig r;
    const auto& cand = r.arm("RS.", 2);
    const cycle_t end = r.run(cand);
    EXPECT_GE(end, cand.compute_cycles);
}

TEST(layer_executor, latency_at_least_isolated_dram_bound) {
    rig r;
    const auto& cand = r.arm("VT.", 3);  // a weight-heavy transformer GEMM
    const cycle_t end = r.run(cand);
    const double dram_min = static_cast<double>(cand.dram_bytes()) /
                            r.cfg.dram.peak_bytes_per_cycle();
    EXPECT_GE(static_cast<double>(end), dram_min);
}

TEST(layer_executor, multi_core_speeds_up_compute_bound_layers) {
    rig solo;
    const auto& cand1 = solo.arm("RS.", 2);
    solo.task.cores = {0};
    const cycle_t one = solo.run(cand1);

    rig quad;
    const auto& cand4 = quad.arm("RS.", 2);
    quad.task.cores = {0, 1, 2, 3};
    const cycle_t four = quad.run(cand4);
    EXPECT_LT(four, one);
}

TEST(layer_executor, multicast_combines_multi_core_weight_reads) {
    rig r;
    const auto& cand = r.arm("RS.", 2);
    r.task.cores = {0, 1, 2, 3};
    r.run(cand);
    if (cand.weights_cached()) {
        EXPECT_GT(r.machine.cache().stats().multicast_combined, 0u);
    }
}

TEST(layer_executor, elementwise_layers_stream_in_chunks) {
    rig r;
    // PointPillars' scatter: a large pool/scatter op.
    const auto& m = model::model_by_abbr("PP.");
    std::uint32_t scatter = 0;
    for (std::uint32_t i = 0; i < m.layers.size(); ++i)
        if (m.layers[i].name == "scatter") scatter = i;
    ASSERT_GT(scatter, 0u);
    const auto& cand = r.arm("PP.", scatter);
    const cycle_t end = r.run(cand);
    EXPECT_GT(end, 0u);
    // All output bytes reached memory (bypass writes).
    EXPECT_GE(r.machine.cache().stats().bypass_writes,
              lines_for(m.layers[scatter].output_bytes));
}

}  // namespace
}  // namespace camdn::sim

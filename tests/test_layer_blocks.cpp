// Tests for LBM layer-block segmentation and the first-fit region layout.
#include <gtest/gtest.h>

#include "model/layer_blocks.h"
#include "model/model_zoo.h"

namespace camdn::model {
namespace {

model tiny_chain(std::initializer_list<std::uint64_t> output_bytes) {
    model m;
    m.name = "tiny";
    int i = 0;
    for (auto bytes : output_bytes) {
        layer l;
        l.name = "l" + std::to_string(i++);
        l.kind = layer_kind::elementwise;
        l.m = bytes;
        l.input_bytes = bytes;
        l.output_bytes = bytes;
        m.layers.push_back(l);
    }
    return m;
}

TEST(layout_block, two_layer_block_holds_both_outputs) {
    const model m = tiny_chain({kib(64), kib(64)});
    const layer_block b = layout_block(m, 0, 1);
    EXPECT_EQ(b.size(), 2u);
    // Layer 0's output is live while layer 1 produces: disjoint offsets.
    EXPECT_NE(b.out_offset[0], b.out_offset[1]);
    EXPECT_EQ(b.peak_bytes, 2 * kib(64));
}

TEST(layout_block, dead_tensors_reuse_space) {
    // Chain of 4: output i dies once layer i+1 ran, so slot reuse keeps the
    // extent at roughly two live tensors, not four.
    const model m = tiny_chain({kib(32), kib(32), kib(32), kib(32)});
    const layer_block b = layout_block(m, 0, 3);
    EXPECT_LE(b.peak_bytes, 2 * kib(32));
}

TEST(layout_block, residual_extends_lifetime) {
    model m = tiny_chain({kib(16), kib(16), kib(16), kib(16)});
    m.layers[3].residual_from = 0;  // layer 0's output must survive to 3
    const layer_block b = layout_block(m, 0, 3);
    EXPECT_GE(b.peak_bytes, 3 * kib(16));  // 0 alive + producer/consumer pair
    // Offsets of simultaneously live tensors are disjoint.
    EXPECT_NE(b.out_offset[0], b.out_offset[1]);
    EXPECT_NE(b.out_offset[0], b.out_offset[2]);
    EXPECT_NE(b.out_offset[0], b.out_offset[3]);
}

TEST(layout_block, offsets_are_line_aligned) {
    const model m = tiny_chain({100, 200, 300});
    const layer_block b = layout_block(m, 0, 2);
    for (auto off : b.out_offset) EXPECT_EQ(off % line_bytes, 0u);
}

TEST(segmentation, respects_budget) {
    const model m = tiny_chain({kib(64), kib(64), kib(64), kib(64)});
    const auto blocks = segment_layer_blocks(m, kib(100), 6);
    for (const auto& b : blocks) {
        if (b.size() > 1) EXPECT_LE(b.peak_bytes, kib(100));
    }
}

TEST(segmentation, respects_max_layers) {
    const model m = tiny_chain({64, 64, 64, 64, 64, 64, 64, 64, 64, 64});
    const auto blocks = segment_layer_blocks(m, mib(1), 3);
    for (const auto& b : blocks) EXPECT_LE(b.size(), 3u);
}

TEST(segmentation, covers_every_layer_exactly_once) {
    const model m = tiny_chain({kib(1), kib(512), kib(1), kib(2048), kib(1)});
    const auto blocks = segment_layer_blocks(m, kib(600), 6);
    std::vector<int> covered(m.layers.size(), 0);
    for (const auto& b : blocks) {
        EXPECT_LE(b.first, b.last);
        for (std::uint32_t i = b.first; i <= b.last; ++i) ++covered[i];
    }
    for (int c : covered) EXPECT_EQ(c, 1);
}

TEST(segmentation, oversized_layer_forms_singleton_block) {
    const model m = tiny_chain({kib(1), mib(64), kib(1)});
    const auto blocks = segment_layer_blocks(m, mib(1), 6);
    bool found_singleton = false;
    for (const auto& b : blocks)
        if (b.first <= 1 && 1 <= b.last) found_singleton = b.size() == 1 || b.first == 1;
    EXPECT_TRUE(found_singleton);
}

// Property check over the real zoo: layouts never overlap live tensors.
class block_layout_property : public ::testing::TestWithParam<std::string> {};

TEST_P(block_layout_property, live_ranges_never_overlap) {
    const auto& m = model_by_abbr(GetParam());
    const auto blocks = segment_layer_blocks(m, mib(8), 6);
    for (const auto& b : blocks) {
        for (std::uint32_t i = b.first; i <= b.last; ++i) {
            for (std::uint32_t j = i + 1; j <= b.last; ++j) {
                // j's output is born while i's output may still be live iff
                // i's last consumer is at or after j.
                std::uint32_t last_use = std::min(i + 1, b.last);
                for (std::uint32_t t = i + 1; t <= b.last; ++t)
                    if (m.layers[t].residual_from == static_cast<std::int32_t>(i))
                        last_use = std::max(last_use, t);
                if (last_use < j) continue;  // i dead before j born
                const auto io = b.offset_of(i);
                const auto jo = b.offset_of(j);
                const auto isz = round_up(std::max<std::uint64_t>(
                                              m.layers[i].output_bytes, 1),
                                          line_bytes);
                const auto jsz = round_up(std::max<std::uint64_t>(
                                              m.layers[j].output_bytes, 1),
                                          line_bytes);
                EXPECT_TRUE(io + isz <= jo || jo + jsz <= io)
                    << m.name << " block [" << b.first << "," << b.last
                    << "] layers " << i << "," << j;
            }
        }
    }
}

TEST_P(block_layout_property, extent_bounds_sum_of_outputs) {
    const auto& m = model_by_abbr(GetParam());
    const auto blocks = segment_layer_blocks(m, mib(8), 6);
    for (const auto& b : blocks) {
        std::uint64_t sum = 0;
        for (std::uint32_t i = b.first; i <= b.last; ++i)
            sum += round_up(std::max<std::uint64_t>(m.layers[i].output_bytes, 1),
                            line_bytes);
        EXPECT_LE(b.peak_bytes, sum);
        EXPECT_GT(b.peak_bytes, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(all_models, block_layout_property,
                         ::testing::Values("RS.", "MB.", "EF.", "VT.", "BE.",
                                           "GN.", "WV.", "PP."));

}  // namespace
}  // namespace camdn::model

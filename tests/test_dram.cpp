// Unit tests for the cycle-level DRAM model: latency classes, bandwidth
// ceilings, per-task attribution and MoCA-style regulation.
#include <gtest/gtest.h>

#include "dram/dram_system.h"

namespace camdn::dram {
namespace {

dram_config table2_config() { return dram_config{}; }

TEST(dram_config, table2_peak_bandwidth) {
    dram_config cfg;
    EXPECT_DOUBLE_EQ(cfg.peak_bytes_per_cycle(), 102.4);  // 102.4 GB/s @1GHz
    EXPECT_EQ(cfg.burst_deci_cycles(), 25u);  // 64 B / 25.6 B-per-cycle
}

TEST(dram, row_hit_is_faster_than_row_empty_and_conflict) {
    dram_system d(table2_config());
    const dram_config cfg = table2_config();
    // Consecutive lines of one (channel, bank) pair are spaced by
    // channels * banks lines; rows hold row_bytes/line_bytes of them.
    const addr_t bank_stride =
        static_cast<addr_t>(cfg.channels) * cfg.banks_per_channel * line_bytes;
    // First access: row empty (activate + CAS).
    const cycle_t first = d.access(0, false, 0);
    // Next line of the same row on the same bank: row hit.
    const cycle_t hit = d.access(bank_stride, false, first) - first;
    // A distant row on the same bank: conflict (precharge + activate).
    const addr_t far_row = bank_stride * (cfg.row_bytes / line_bytes) * 8;
    const cycle_t conflict =
        d.access(far_row, false, first + hit) - (first + hit);
    EXPECT_LT(hit, static_cast<cycle_t>(first));
    EXPECT_LT(hit, conflict);
    EXPECT_EQ(d.stats().row_hits, 1u);
    EXPECT_EQ(d.stats().row_misses, 1u);
    EXPECT_EQ(d.stats().row_empties, 1u);
}

TEST(dram, sequential_stream_reaches_peak_bandwidth) {
    dram_system d(table2_config());
    const std::uint64_t lines = 40'000;
    const cycle_t done = d.access_burst(0, lines, false, 0);
    const double achieved =
        static_cast<double>(lines * line_bytes) / static_cast<double>(done);
    // Sequential lines interleave channels and stay in open rows: within
    // 10% of the 102.4 B/cycle peak.
    EXPECT_GT(achieved, 0.9 * 102.4);
    EXPECT_LE(achieved, 102.4 + 1e-9);
}

TEST(dram, single_channel_stream_is_quarter_peak) {
    dram_system d(table2_config());
    // Touch only channel 0: line ids congruent 0 mod 4.
    cycle_t t = 0;
    const std::uint64_t lines = 10'000;
    for (std::uint64_t i = 0; i < lines; ++i)
        t = d.access(i * 4 * line_bytes, false, 0);
    const double achieved =
        static_cast<double>(lines * line_bytes) / static_cast<double>(t);
    EXPECT_NEAR(achieved, 25.6, 2.6);
}

TEST(dram, completion_monotonic_under_same_arrival) {
    dram_system d(table2_config());
    cycle_t prev = 0;
    for (int i = 0; i < 512; ++i) {
        const cycle_t done = d.access(i * line_bytes, false, 0);
        EXPECT_GE(done, prev);
        prev = done;
    }
}

TEST(dram, per_task_byte_attribution) {
    dram_system d(table2_config());
    d.access_burst(0, 10, false, 0, /*task=*/1);
    d.access_burst(mib(1), 5, true, 0, /*task=*/2);
    EXPECT_EQ(d.task_bytes(1), 10 * line_bytes);
    EXPECT_EQ(d.task_bytes(2), 5 * line_bytes);
    EXPECT_EQ(d.task_bytes(3), 0u);
    EXPECT_EQ(d.stats().reads, 10u);
    EXPECT_EQ(d.stats().writes, 5u);
}

TEST(dram, unattributed_traffic_is_never_throttled) {
    dram_system d(table2_config());
    d.set_task_share(7, 0.01);
    const cycle_t unregulated = d.access_burst(0, 100, false, 0, no_task);
    EXPECT_EQ(d.stats().throttled, 0u);
    EXPECT_GT(unregulated, 0u);
}

TEST(dram, regulation_throttles_over_budget_tasks) {
    dram_system d(table2_config());
    d.set_task_share(1, 0.05);  // 5% of 102.4 B/cyc over a 10 us epoch
    const std::uint64_t lines = 20'000;
    const cycle_t done = d.access_burst(0, lines, false, 0, 1);
    const double achieved =
        static_cast<double>(lines * line_bytes) / static_cast<double>(done);
    EXPECT_LT(achieved, 0.07 * 102.4);
    EXPECT_GT(d.stats().throttled, 0u);
}

TEST(dram, share_zero_disables_regulation) {
    dram_system d(table2_config());
    d.set_task_share(1, 0.05);
    d.set_task_share(1, 0.0);
    d.access_burst(0, 10'000, false, 0, 1);
    EXPECT_EQ(d.stats().throttled, 0u);
}

TEST(dram, clear_task_shares_unthrottles) {
    dram_system d(table2_config());
    d.set_task_share(1, 0.01);
    d.clear_task_shares();
    d.access_burst(0, 5'000, false, 0, 1);
    EXPECT_EQ(d.stats().throttled, 0u);
}

TEST(dram, burst_reports_first_line_completion) {
    dram_system d(table2_config());
    cycle_t first = 0;
    const cycle_t last = d.access_burst(0, 1'000, false, 0, no_task, &first);
    EXPECT_GT(first, 0u);
    EXPECT_LT(first, last);
}

TEST(dram, reset_stats_and_timing) {
    dram_system d(table2_config());
    d.access_burst(0, 100, false, 0, 1);
    d.reset_stats();
    EXPECT_EQ(d.stats().accesses(), 0u);
    EXPECT_EQ(d.task_bytes(1), 0u);
    d.reset_timing();
    // After a timing reset, an access at time 0 behaves like a cold start.
    const cycle_t done = d.access(0, false, 0);
    EXPECT_LE(done, 100u);
}

TEST(dram, bus_busy_accounting_bounded_by_elapsed) {
    dram_system d(table2_config());
    const cycle_t done = d.access_burst(0, 5'000, false, 0);
    // Busy deci-cycles across 4 channels cannot exceed 4 * elapsed.
    EXPECT_LE(d.stats().bus_busy_deci, done * 10 * 4);
    EXPECT_GT(d.stats().bus_busy_deci, 0u);
}

TEST(dram, writes_occupy_the_bus_like_reads) {
    dram_system reads(table2_config());
    dram_system writes(table2_config());
    const cycle_t r = reads.access_burst(0, 10'000, false, 0);
    const cycle_t w = writes.access_burst(0, 10'000, true, 0);
    EXPECT_NEAR(static_cast<double>(r), static_cast<double>(w), r * 0.05);
}

// Parameterized: the model respects its geometry across configurations.
class dram_geometry : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(dram_geometry, bandwidth_scales_with_channels) {
    dram_config cfg;
    cfg.channels = GetParam();
    dram_system d(cfg);
    const std::uint64_t lines = 20'000;
    const cycle_t done = d.access_burst(0, lines, false, 0);
    const double achieved =
        static_cast<double>(lines * line_bytes) / static_cast<double>(done);
    const double peak = cfg.peak_bytes_per_cycle();
    EXPECT_GT(achieved, 0.85 * peak);
    EXPECT_LE(achieved, peak + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(channel_counts, dram_geometry,
                         ::testing::Values(1, 2, 4, 8));

class dram_interleave
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(dram_interleave, all_banks_are_reachable) {
    dram_config cfg;
    cfg.channels = std::get<0>(GetParam());
    cfg.banks_per_channel = std::get<1>(GetParam());
    dram_system d(cfg);
    // Touch enough consecutive lines to hit every (channel, bank) pair;
    // row_empties counts exactly one activation per bank touched.
    const std::uint64_t spread =
        static_cast<std::uint64_t>(cfg.channels) * cfg.banks_per_channel;
    d.access_burst(0, spread, false, 0);
    EXPECT_EQ(d.stats().row_empties, spread);
}

INSTANTIATE_TEST_SUITE_P(
    geometries, dram_interleave,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(4, 16)));

}  // namespace
}  // namespace camdn::dram

// Tests of the pluggable workload generators: closed-loop equivalence is
// covered by the golden tests in test_experiment.cpp; here the open-loop
// Poisson generator (determinism, admission bound, queue-delay accounting)
// and trace replay (arrival honoring, ordering) are exercised end to end
// through run_experiment.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "model/model_zoo.h"
#include "sim/experiment.h"
#include "sim/sweep.h"

namespace camdn::sim {
namespace {

experiment_config open_loop_cfg() {
    experiment_config cfg;
    cfg.pol = policy::shared_baseline;
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.workload = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.co_located = 2;
    cfg.arrival_rate_per_ms = 4.0;
    cfg.total_arrivals = 12;
    cfg.admission_queue_limit = runtime::unbounded_queue;
    cfg.seed = 5;
    return cfg;
}

TEST(open_loop, completes_every_admitted_arrival) {
    const auto res = run_experiment(open_loop_cfg());
    EXPECT_EQ(res.completions.size(), 12u);
    EXPECT_EQ(res.rejected_arrivals, 0u);
}

TEST(open_loop, deterministic_under_fixed_seed) {
    const auto a = run_experiment(open_loop_cfg());
    const auto b = run_experiment(open_loop_cfg());
    ASSERT_EQ(a.completions.size(), b.completions.size());
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.dram_total_bytes, b.dram_total_bytes);
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
        EXPECT_EQ(a.completions[i].arrival, b.completions[i].arrival);
        EXPECT_EQ(a.completions[i].start, b.completions[i].start);
        EXPECT_EQ(a.completions[i].end, b.completions[i].end);
        EXPECT_EQ(a.completions[i].abbr, b.completions[i].abbr);
        EXPECT_EQ(a.completions[i].dram_bytes, b.completions[i].dram_bytes);
    }
}

TEST(open_loop, different_seeds_change_the_arrival_pattern) {
    auto cfg = open_loop_cfg();
    const auto a = run_experiment(cfg);
    cfg.seed = 977;
    const auto b = run_experiment(cfg);
    bool any_different = a.makespan != b.makespan;
    for (std::size_t i = 0;
         !any_different && i < a.completions.size() && i < b.completions.size();
         ++i)
        any_different = a.completions[i].arrival != b.completions[i].arrival ||
                        a.completions[i].abbr != b.completions[i].abbr;
    EXPECT_TRUE(any_different);
}

TEST(open_loop, arrivals_are_spread_in_time) {
    // Open loop means arrival times come from the generator's clock, not
    // from completions: they must not all be zero, and must be
    // non-decreasing in completion-independent order.
    const auto res = run_experiment(open_loop_cfg());
    std::set<cycle_t> arrivals;
    for (const auto& rec : res.completions) arrivals.insert(rec.arrival);
    EXPECT_GT(arrivals.size(), 1u);
    EXPECT_GT(*arrivals.rbegin(), 0u);
}

TEST(open_loop, respects_admission_queue_bound) {
    auto cfg = open_loop_cfg();
    // Overload: a burst far faster than two slots can serve, with a tiny
    // admission queue. Excess arrivals must be dropped, never queued.
    cfg.arrival_rate_per_ms = 1000.0;
    cfg.total_arrivals = 40;
    cfg.admission_queue_limit = 3;
    const auto res = run_experiment(cfg);
    EXPECT_GT(res.rejected_arrivals, 0u);
    EXPECT_EQ(res.completions.size() + res.rejected_arrivals, 40u);
}

TEST(open_loop, unbounded_queue_drops_nothing_under_overload) {
    auto cfg = open_loop_cfg();
    cfg.arrival_rate_per_ms = 1000.0;
    cfg.total_arrivals = 20;
    cfg.admission_queue_limit = runtime::unbounded_queue;
    const auto res = run_experiment(cfg);
    EXPECT_EQ(res.rejected_arrivals, 0u);
    EXPECT_EQ(res.completions.size(), 20u);
}

TEST(open_loop, queue_delay_is_accounted_under_overload) {
    auto cfg = open_loop_cfg();
    cfg.arrival_rate_per_ms = 1000.0;
    cfg.total_arrivals = 20;
    cfg.admission_queue_limit = runtime::unbounded_queue;
    const auto res = run_experiment(cfg);
    int queued = 0;
    for (const auto& rec : res.completions) {
        EXPECT_EQ(rec.queue_delay(), rec.start - rec.arrival);
        queued += rec.queue_delay() > 0;
    }
    EXPECT_GT(queued, 0);
}

TEST(open_loop, rejected_arrivals_reduce_served_load) {
    auto cfg = open_loop_cfg();
    cfg.arrival_rate_per_ms = 1000.0;
    cfg.total_arrivals = 40;
    cfg.admission_queue_limit = 3;
    const auto bounded = run_experiment(cfg);
    cfg.admission_queue_limit = runtime::unbounded_queue;
    const auto unbounded = run_experiment(cfg);
    EXPECT_LT(bounded.completions.size(), unbounded.completions.size());
    EXPECT_LE(bounded.makespan, unbounded.makespan);
}

TEST(trace_replay, honors_arrival_times_and_models) {
    experiment_config cfg;
    cfg.pol = policy::shared_baseline;
    cfg.kind = runtime::workload_kind::trace_replay;
    cfg.co_located = 2;
    cfg.trace = {{0, &model::model_by_abbr("MB.")},
                 {ms_to_cycles(1.0), &model::model_by_abbr("MB.")},
                 {ms_to_cycles(5.0), &model::model_by_abbr("RS.")}};
    const auto res = run_experiment(cfg);
    ASSERT_EQ(res.completions.size(), 3u);

    std::vector<cycle_t> arrivals;
    std::multiset<std::string> models;
    for (const auto& rec : res.completions) {
        arrivals.push_back(rec.arrival);
        models.insert(rec.abbr);
    }
    std::sort(arrivals.begin(), arrivals.end());
    EXPECT_EQ(arrivals[0], 0u);
    EXPECT_EQ(arrivals[1], ms_to_cycles(1.0));
    EXPECT_EQ(arrivals[2], ms_to_cycles(5.0));
    EXPECT_EQ(models, (std::multiset<std::string>{"MB.", "MB.", "RS."}));
}

TEST(trace_replay, unsorted_trace_is_replayed_in_time_order) {
    experiment_config cfg;
    cfg.pol = policy::shared_baseline;
    cfg.kind = runtime::workload_kind::trace_replay;
    cfg.co_located = 1;
    cfg.trace = {{ms_to_cycles(4.0), &model::model_by_abbr("MB.")},
                 {0, &model::model_by_abbr("RS.")}};
    const auto res = run_experiment(cfg);
    ASSERT_EQ(res.completions.size(), 2u);
    EXPECT_EQ(res.completions[0].abbr, "RS.");
    EXPECT_EQ(res.completions[0].arrival, 0u);
    EXPECT_EQ(res.completions[1].abbr, "MB.");
    EXPECT_EQ(res.completions[1].arrival, ms_to_cycles(4.0));
}

TEST(trace_replay, burst_queues_on_scarce_slots) {
    experiment_config cfg;
    cfg.pol = policy::shared_baseline;
    cfg.kind = runtime::workload_kind::trace_replay;
    cfg.co_located = 1;  // one slot, three simultaneous arrivals
    for (int i = 0; i < 3; ++i)
        cfg.trace.push_back({0, &model::model_by_abbr("MB.")});
    const auto res = run_experiment(cfg);
    ASSERT_EQ(res.completions.size(), 3u);
    int queued = 0;
    for (const auto& rec : res.completions) {
        EXPECT_EQ(rec.arrival, 0u);
        queued += rec.queue_delay() > 0;
    }
    EXPECT_EQ(queued, 2);
}

TEST(trace_replay, empty_trace_completes_immediately) {
    experiment_config cfg;
    cfg.pol = policy::shared_baseline;
    cfg.kind = runtime::workload_kind::trace_replay;
    cfg.co_located = 2;
    const auto res = run_experiment(cfg);
    EXPECT_TRUE(res.completions.empty());
    EXPECT_EQ(res.makespan, 0u);
}

TEST(open_loop, zero_rate_stream_still_serves_every_arrival) {
    // A zero rate degenerates to astronomically sparse arrivals rather
    // than dividing by zero: every arrival still fires, far apart, and the
    // run stays deterministic.
    auto cfg = open_loop_cfg();
    cfg.arrival_rate_per_ms = 0.0;
    cfg.total_arrivals = 3;
    const auto a = run_experiment(cfg);
    EXPECT_EQ(a.completions.size(), 3u);
    EXPECT_EQ(a.rejected_arrivals, 0u);
    std::set<cycle_t> arrivals;
    for (const auto& rec : a.completions) arrivals.insert(rec.arrival);
    EXPECT_EQ(arrivals.size(), 3u);
    // Mean gap is ~1e9 ms at the clamped rate floor; even the luckiest
    // draw dwarfs any real service time.
    EXPECT_GT(*arrivals.begin(), ms_to_cycles(1e6));
    const auto b = run_experiment(cfg);
    EXPECT_EQ(a.makespan, b.makespan);
}

TEST(open_loop, zero_capacity_queue_drops_every_arrival) {
    auto cfg = open_loop_cfg();
    cfg.admission_queue_limit = 0;
    const auto res = run_experiment(cfg);
    EXPECT_TRUE(res.completions.empty());
    EXPECT_EQ(res.rejected_arrivals, 12u);
    EXPECT_TRUE(res.queue_delay_ms.empty());
}

TEST(open_loop, identical_seeds_identical_through_sweep_pool) {
    // The same config submitted many times through the parallel sweep pool
    // must reproduce the direct run bit for bit, at any pool width.
    const auto reference = run_experiment(open_loop_cfg());
    std::vector<experiment_config> cfgs(4, open_loop_cfg());
    for (unsigned threads : {1u, 4u}) {
        const auto swept = run_sweep(cfgs, threads);
        for (const auto& res : swept) {
            ASSERT_EQ(res.completions.size(), reference.completions.size());
            EXPECT_EQ(res.makespan, reference.makespan);
            EXPECT_EQ(res.dram_total_bytes, reference.dram_total_bytes);
            EXPECT_EQ(res.queue_delay_ms.count(),
                      reference.queue_delay_ms.count());
            EXPECT_DOUBLE_EQ(res.queue_delay_ms.p99(),
                             reference.queue_delay_ms.p99());
            for (std::size_t i = 0; i < res.completions.size(); ++i) {
                EXPECT_EQ(res.completions[i].arrival,
                          reference.completions[i].arrival);
                EXPECT_EQ(res.completions[i].end, reference.completions[i].end);
            }
        }
    }
}

TEST(open_loop, queue_delay_percentiles_cover_every_completion) {
    auto cfg = open_loop_cfg();
    cfg.arrival_rate_per_ms = 1000.0;
    cfg.total_arrivals = 20;
    cfg.admission_queue_limit = runtime::unbounded_queue;
    const auto res = run_experiment(cfg);
    EXPECT_EQ(res.queue_delay_ms.count(), res.completions.size());
    double max_delay = 0.0;
    for (const auto& rec : res.completions)
        max_delay = std::max(max_delay, cycles_to_ms(rec.queue_delay()));
    EXPECT_DOUBLE_EQ(res.queue_delay_ms.max(), max_delay);
    EXPECT_GT(res.queue_delay_ms.p99(), 0.0);
}

TEST(closed_loop, does_not_track_queue_delay) {
    experiment_config cfg;
    cfg.pol = policy::shared_baseline;
    cfg.workload = {&model::model_by_abbr("MB.")};
    cfg.co_located = 2;
    const auto res = run_experiment(cfg);
    EXPECT_EQ(res.completions.size(), 2u);
    EXPECT_TRUE(res.queue_delay_ms.empty());
}

TEST(trace_replay, respects_admission_queue_bound) {
    experiment_config cfg;
    cfg.pol = policy::shared_baseline;
    cfg.kind = runtime::workload_kind::trace_replay;
    cfg.co_located = 1;
    cfg.admission_queue_limit = 1;
    for (int i = 0; i < 5; ++i)
        cfg.trace.push_back({0, &model::model_by_abbr("MB.")});
    const auto res = run_experiment(cfg);
    // The first dispatches immediately, the second queues, the rest hit
    // the full one-deep queue.
    EXPECT_EQ(res.completions.size(), 2u);
    EXPECT_EQ(res.rejected_arrivals, 3u);
}

TEST(open_loop, works_with_every_policy) {
    for (policy pol : {policy::shared_baseline, policy::moca, policy::aurora,
                       policy::camdn_hw_only, policy::camdn_full}) {
        auto cfg = open_loop_cfg();
        cfg.pol = pol;
        cfg.total_arrivals = 6;
        const auto res = run_experiment(cfg);
        EXPECT_EQ(res.completions.size(), 6u) << policy_name(pol);
    }
}

// ---- closed-loop + churn hybrid ----

experiment_config hybrid_cfg() {
    experiment_config cfg;
    cfg.pol = policy::camdn_full;  // CPT teardown path on model swaps
    cfg.kind = runtime::workload_kind::closed_loop_churn;
    cfg.workload = {&model::model_by_abbr("MB."), &model::model_by_abbr("EF."),
                    &model::model_by_abbr("RS."),
                    &model::model_by_abbr("VT.")};
    cfg.co_located = 2;
    cfg.inferences_per_slot = 6;
    cfg.think_time_ms = 0.5;
    cfg.churn_interval_ms = 4.0;
    cfg.churn_active_models = 2;
    cfg.seed = 21;
    return cfg;
}

TEST(closed_loop_churn, completes_the_full_closed_loop_plan) {
    const auto res = run_experiment(hybrid_cfg());
    EXPECT_EQ(res.completions.size(), 12u);  // 2 slots x 6 inferences
}

TEST(closed_loop_churn, slots_swap_models_mid_run) {
    const auto res = run_experiment(hybrid_cfg());
    // The rotating window forces each slot through more than one tenant —
    // every swap tears the previous model's CPT down under camdn_full.
    std::set<std::string> slot0, all;
    for (const auto& rec : res.completions) {
        all.insert(rec.abbr);
        if (rec.slot == 0) slot0.insert(rec.abbr);
    }
    EXPECT_GE(slot0.size(), 2u) << "slot 0 never changed model";
    EXPECT_GE(all.size(), 3u) << "churn window never rotated";
}

TEST(closed_loop_churn, deterministic_and_think_time_stretches_makespan) {
    const auto a = run_experiment(hybrid_cfg());
    const auto b = run_experiment(hybrid_cfg());
    ASSERT_EQ(a.completions.size(), b.completions.size());
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
        EXPECT_EQ(a.completions[i].abbr, b.completions[i].abbr);
        EXPECT_EQ(a.completions[i].end, b.completions[i].end);
    }
    auto slow = hybrid_cfg();
    slow.think_time_ms = 2.0;
    EXPECT_GT(run_experiment(slow).makespan, a.makespan);
}

}  // namespace
}  // namespace camdn::sim

// Integration tests of the full simulator through the experiment harness:
// determinism, accounting conservation, policy mechanics and the feature
// toggles. Small workloads keep each case under a second.
#include <gtest/gtest.h>

#include <set>

#include "model/model_zoo.h"
#include "sim/experiment.h"

namespace camdn::sim {
namespace {

experiment_config small_cfg(policy pol) {
    experiment_config cfg;
    cfg.pol = pol;
    cfg.workload = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.co_located = 4;
    cfg.inferences_per_slot = 1;
    cfg.seed = 11;
    return cfg;
}

TEST(experiment, completes_all_inferences_for_every_policy) {
    for (policy pol : {policy::shared_baseline, policy::moca, policy::aurora,
                       policy::camdn_hw_only, policy::camdn_full}) {
        const auto res = run_experiment(small_cfg(pol));
        EXPECT_EQ(res.completions.size(), 4u) << policy_name(pol);
        EXPECT_GT(res.makespan, 0u) << policy_name(pol);
        for (const auto& rec : res.completions) {
            EXPECT_GT(rec.end, rec.arrival) << policy_name(pol);
            EXPECT_GE(rec.end, rec.start) << policy_name(pol);
        }
    }
}

TEST(experiment, deterministic_under_fixed_seed) {
    const auto a = run_experiment(small_cfg(policy::camdn_full));
    const auto b = run_experiment(small_cfg(policy::camdn_full));
    ASSERT_EQ(a.completions.size(), b.completions.size());
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.dram_total_bytes, b.dram_total_bytes);
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
        EXPECT_EQ(a.completions[i].end, b.completions[i].end);
        EXPECT_EQ(a.completions[i].abbr, b.completions[i].abbr);
        EXPECT_EQ(a.completions[i].dram_bytes, b.completions[i].dram_bytes);
    }
}

TEST(experiment, different_seeds_change_the_schedule) {
    auto cfg = small_cfg(policy::shared_baseline);
    cfg.workload = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB."),
                    &model::model_by_abbr("EF."), &model::model_by_abbr("GN.")};
    cfg.co_located = 8;
    const auto a = run_experiment(cfg);
    cfg.seed = 997;
    const auto b = run_experiment(cfg);
    bool any_different = a.makespan != b.makespan;
    for (std::size_t i = 0; !any_different && i < a.completions.size(); ++i)
        any_different = a.completions[i].abbr != b.completions[i].abbr;
    EXPECT_TRUE(any_different);
}

TEST(experiment, workload_is_policy_invariant) {
    // Same seed => the (slot, inference)->model assignment is identical
    // across policies (fair comparison, as in the paper).
    const auto a = run_experiment(small_cfg(policy::shared_baseline));
    const auto b = run_experiment(small_cfg(policy::camdn_full));
    std::multiset<std::string> ma, mb;
    for (const auto& r : a.completions) ma.insert(r.abbr);
    for (const auto& r : b.completions) mb.insert(r.abbr);
    EXPECT_EQ(ma, mb);
}

TEST(experiment, single_tenant_runs_alone) {
    experiment_config cfg;
    cfg.pol = policy::shared_baseline;
    cfg.workload = {&model::model_by_abbr("MB.")};
    cfg.co_located = 1;
    cfg.inferences_per_slot = 2;
    const auto res = run_experiment(cfg);
    ASSERT_EQ(res.completions.size(), 2u);
    EXPECT_EQ(res.completions[0].abbr, "MB.");
    // No queueing: arrival == start.
    for (const auto& r : res.completions) EXPECT_EQ(r.arrival, r.start);
}

TEST(experiment, oversubscribed_slots_queue_for_cores) {
    experiment_config cfg = small_cfg(policy::shared_baseline);
    cfg.soc.npu.cores = 2;  // 4 slots on 2 cores
    const auto res = run_experiment(cfg);
    ASSERT_EQ(res.completions.size(), 4u);
    int queued = 0;
    for (const auto& r : res.completions) queued += r.start > r.arrival;
    EXPECT_GT(queued, 0);
}

TEST(experiment, per_task_dram_bytes_are_attributed) {
    const auto res = run_experiment(small_cfg(policy::shared_baseline));
    std::uint64_t attributed = 0;
    for (const auto& r : res.completions) attributed += r.dram_bytes;
    EXPECT_GT(attributed, 0u);
    EXPECT_LE(attributed, res.dram_total_bytes);
}

TEST(experiment, camdn_uses_regions_not_transparent_path) {
    const auto res = run_experiment(small_cfg(policy::camdn_full));
    EXPECT_EQ(res.cache_stats.hits + res.cache_stats.misses, 0u);
    EXPECT_GT(res.cache_stats.region_reads + res.cache_stats.region_fills +
                  res.cache_stats.bypass_reads,
              0u);
}

TEST(experiment, baselines_use_transparent_path_only) {
    const auto res = run_experiment(small_cfg(policy::shared_baseline));
    EXPECT_GT(res.cache_stats.hits + res.cache_stats.misses, 0u);
    EXPECT_EQ(res.cache_stats.region_reads, 0u);
    EXPECT_EQ(res.cache_stats.bypass_reads, 0u);
}

TEST(experiment, moca_actually_regulates) {
    auto cfg = small_cfg(policy::moca);
    cfg.co_located = 4;
    const auto res = run_experiment(cfg);
    // Regulation may or may not throttle depending on phases, but the
    // policy path must at least complete and move the same workload.
    EXPECT_EQ(res.completions.size(), 4u);
}

TEST(experiment, lbm_toggle_changes_traffic) {
    auto cfg = small_cfg(policy::camdn_full);
    cfg.workload = {&model::model_by_abbr("MB.")};
    const auto with_lbm = run_experiment(cfg);
    cfg.features.lbm = false;
    const auto without = run_experiment(cfg);
    EXPECT_LT(with_lbm.dram_total_bytes, without.dram_total_bytes);
}

TEST(experiment, bypass_toggle_reroutes_streams) {
    auto cfg = small_cfg(policy::camdn_full);
    cfg.features.bypass = false;
    const auto res = run_experiment(cfg);
    // Streams now go through the transparent path (within CPU ways).
    EXPECT_GT(res.cache_stats.hits + res.cache_stats.misses, 0u);
}

TEST(experiment, empty_workload_defaults_to_the_zoo) {
    experiment_config cfg;
    cfg.pol = policy::shared_baseline;
    cfg.co_located = 2;
    cfg.inferences_per_slot = 1;
    cfg.seed = 3;
    const auto res = run_experiment(cfg);
    EXPECT_EQ(res.completions.size(), 2u);
}

TEST(experiment, qos_mode_assigns_deadlines) {
    auto cfg = small_cfg(policy::aurora);
    cfg.qos_mode = true;
    cfg.qos_scale = 1.0;
    const auto res = run_experiment(cfg);
    EXPECT_EQ(res.completions.size(), 4u);
}

TEST(experiment, result_helpers_aggregate_correctly) {
    experiment_result res;
    inference_record a;
    a.abbr = "RS.";
    a.arrival = 0;
    a.end = ms_to_cycles(10.0);
    a.dram_bytes = mib(64);
    inference_record b;
    b.abbr = "MB.";
    b.arrival = 0;
    b.end = ms_to_cycles(2.0);
    b.dram_bytes = mib(16);
    res.completions = {a, b};
    EXPECT_DOUBLE_EQ(res.avg_latency_ms(), 6.0);
    EXPECT_DOUBLE_EQ(res.mean_latency_ms("RS."), 10.0);
    EXPECT_DOUBLE_EQ(res.mem_mb_per_inference(), 40.0);
    EXPECT_DOUBLE_EQ(res.mem_mb_per_inference("MB."), 16.0);
    EXPECT_EQ(res.completions_of("RS."), 1u);
    EXPECT_EQ(res.completions_of(""), 2u);
}

// ---- Golden tests --------------------------------------------------------
// Full inference records captured from the pre-refactor monolithic driver
// (the 459-line scheduler inside experiment.cpp before the runtime
// extraction). The closed_loop generator must reproduce them bit for bit.

struct golden_rec {
    task_id slot;
    const char* abbr;
    cycle_t arrival, start, end;
    std::uint64_t dram_bytes;
    std::uint32_t cores;
};

void expect_golden(const experiment_result& res, cycle_t makespan,
                   std::uint64_t dram_total,
                   const std::vector<golden_rec>& recs) {
    EXPECT_EQ(res.makespan, makespan);
    EXPECT_EQ(res.dram_total_bytes, dram_total);
    ASSERT_EQ(res.completions.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const auto& got = res.completions[i];
        const auto& want = recs[i];
        EXPECT_EQ(got.slot, want.slot) << "record " << i;
        EXPECT_EQ(got.abbr, want.abbr) << "record " << i;
        EXPECT_EQ(got.arrival, want.arrival) << "record " << i;
        EXPECT_EQ(got.start, want.start) << "record " << i;
        EXPECT_EQ(got.end, want.end) << "record " << i;
        EXPECT_EQ(got.dram_bytes, want.dram_bytes) << "record " << i;
        EXPECT_EQ(got.cores, want.cores) << "record " << i;
    }
}

TEST(experiment_golden, camdn_full_matches_pre_refactor_driver) {
    experiment_config cfg;
    cfg.pol = policy::camdn_full;
    cfg.workload = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.co_located = 4;
    cfg.inferences_per_slot = 2;
    cfg.seed = 11;
    expect_golden(run_experiment(cfg), 1771603, 98272896,
                  {{0, "MB.", 0, 0, 311320, 5028160, 4},
                   {1, "MB.", 0, 0, 311842, 5028160, 4},
                   {3, "MB.", 0, 0, 313264, 5028160, 4},
                   {0, "MB.", 311320, 311320, 591217, 5028160, 4},
                   {3, "MB.", 313264, 313264, 592738, 5028160, 4},
                   {2, "RS.", 0, 0, 1477978, 34051968, 4},
                   {2, "MB.", 1477978, 1477978, 1746333, 5028160, 4},
                   {1, "RS.", 311842, 311842, 1771603, 34051968, 4}});
}

TEST(experiment_golden, shared_baseline_matches_pre_refactor_driver) {
    experiment_config cfg;
    cfg.pol = policy::shared_baseline;
    cfg.workload = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.co_located = 4;
    cfg.inferences_per_slot = 2;
    cfg.seed = 11;
    expect_golden(run_experiment(cfg), 2171755, 122625408,
                  {{0, "MB.", 0, 0, 365694, 8826432, 4},
                   {1, "MB.", 0, 0, 366894, 8807296, 4},
                   {3, "MB.", 0, 0, 376090, 8827776, 4},
                   {0, "MB.", 365694, 365694, 717493, 8292032, 4},
                   {3, "MB.", 376090, 376090, 728997, 8223232, 4},
                   {2, "RS.", 0, 0, 1841771, 36577856, 4},
                   {2, "MB.", 1841771, 1841771, 2121781, 4876992, 4},
                   {1, "RS.", 366894, 366894, 2171755, 35273472, 4}});
}

TEST(experiment_golden, aurora_qos_matches_pre_refactor_driver) {
    experiment_config cfg;
    cfg.pol = policy::aurora;
    cfg.workload = {&model::model_by_abbr("MB."), &model::model_by_abbr("EF.")};
    cfg.co_located = 4;
    cfg.inferences_per_slot = 1;
    cfg.seed = 7;
    cfg.qos_mode = true;
    cfg.qos_scale = 1.0;
    // The pre-refactor driver reported makespan 750000 here: its final
    // bandwidth-reallocation epoch (a no-op — the run had drained) was
    // still pending and dragged the clock past the last completion. The
    // cancellable bw-epoch timer now stops the chain when the run drains,
    // so the makespan is the last completion. Completion records are
    // unchanged bit for bit.
    expect_golden(run_experiment(cfg), 719856, 36468736,
                  {{0, "MB.", 0, 0, 704400, 9060288, 1},
                   {1, "MB.", 0, 0, 708188, 9081920, 1},
                   {2, "MB.", 0, 0, 713506, 9140096, 1},
                   {3, "MB.", 0, 0, 719856, 9175936, 1}});
}

TEST(experiment, isolated_latencies_cover_requested_models) {
    soc_config soc;
    std::vector<const model::model*> models{&model::model_by_abbr("MB."),
                                            &model::model_by_abbr("EF.")};
    const auto iso = isolated_latencies(soc, models);
    ASSERT_EQ(iso.size(), 2u);
    EXPECT_GT(iso.at("MB."), 0u);
    EXPECT_GT(iso.at("EF."), 0u);
    // EfficientNet-b0 does more work than MobileNet-v2.
    EXPECT_GT(iso.at("EF."), iso.at("MB."));
}

}  // namespace
}  // namespace camdn::sim

// Property tests for the batched access_burst paths (burst_tiny, the
// closed-form row-chain, and the attributed variants): every one must be
// bit-exact against the per-line reference — same completion cycles, same
// first-line completion, same stats (row_hits included: they enter
// snapshot bytes), same snapshot bytes, and, with an attributor attached,
// the same attribution state. The reference is a mirror dram_system driven
// one access() per line at the burst's arrival, which is exactly the walk
// the per-line fallback inside access_burst performs.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "common/snapshot_io.h"
#include "dram/dram_system.h"
#include "obs/attribution.h"

namespace camdn::dram {
namespace {

std::vector<std::uint8_t> snapshot_of(const dram_system& d) {
    snapshot_writer w;
    d.save_state(w);
    return w.bytes();
}

/// The per-line reference: one access() per line, all at the burst's
/// arrival, completion = max over lines, first_done = line 0's completion.
cycle_t perline_burst(dram_system& d, addr_t addr, std::uint64_t nlines,
                      bool is_write, cycle_t arrival, task_id task,
                      cycle_t* first_done) {
    cycle_t done = arrival;
    for (std::uint64_t i = 0; i < nlines; ++i) {
        const cycle_t c = d.access(addr + i * line_bytes, is_write, arrival,
                                   task);
        if (i == 0 && first_done != nullptr) *first_done = c;
        done = std::max(done, c);
    }
    return done;
}

void expect_stats_eq(const dram_stats& a, const dram_stats& b) {
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.row_hits, b.row_hits);
    EXPECT_EQ(a.row_misses, b.row_misses);
    EXPECT_EQ(a.row_empties, b.row_empties);
    EXPECT_EQ(a.throttled, b.throttled);
    EXPECT_EQ(a.bus_busy_deci, b.bus_busy_deci);
}

/// One randomized burst: nlines drawn from the class that exercises the
/// intended dispatch (tiny / closed-form / multi-row), a base address that
/// is sometimes sequential, sometimes row-aligned, sometimes scattered.
struct burst_op {
    addr_t addr = 0;
    std::uint64_t nlines = 0;
    bool is_write = false;
    cycle_t arrival = 0;
    task_id task = no_task;
};

std::vector<burst_op> random_ops(std::uint64_t seed, std::size_t count,
                                 int ntasks) {
    std::mt19937_64 rng(seed);
    std::vector<burst_op> ops;
    ops.reserve(count);
    cycle_t clock = 0;
    std::uint64_t cursor = 0;  // sequential line cursor (the common shape)
    for (std::size_t i = 0; i < count; ++i) {
        burst_op op;
        switch (rng() % 4) {
            case 0:  // tiny path: at most one line per channel
                op.nlines = 1 + rng() % 4;
                break;
            case 1:  // closed form, inside one row block
                op.nlines = 5 + rng() % 196;
                break;
            case 2:  // multi-segment: crosses row boundaries per bank
                op.nlines = 201 + rng() % 4800;
                break;
            default:  // degenerate edges around the tiny/segment boundary
                op.nlines = 3 + rng() % 4;  // 3..6 around channels=4
                break;
        }
        switch (rng() % 3) {
            case 0:  // continue the sequential stream (row hits)
                break;
            case 1:  // jump to a row-aligned base (fresh activates)
                cursor = (rng() % (1u << 16)) * 32;
                break;
            default:  // scattered base (conflict-heavy)
                cursor = rng() % (1u << 21);
                break;
        }
        op.addr = cursor * line_bytes;
        cursor += op.nlines;
        op.is_write = (rng() & 1) != 0;
        // Arrival sometimes repeats (back-to-back submits), sometimes
        // advances past the contention horizon.
        if (rng() % 3 != 0) clock += rng() % 400;
        op.arrival = clock;
        op.task = static_cast<task_id>(rng() % (ntasks + 1)) - 1;  // -1 = none
        ops.push_back(op);
    }
    return ops;
}

TEST(dram_batched, randomized_bursts_match_perline_reference) {
    dram_system batched{dram_config{}};
    dram_system perline{dram_config{}};
    const auto ops = random_ops(/*seed=*/0x5eed0001, /*count=*/400,
                                /*ntasks=*/3);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const burst_op& op = ops[i];
        cycle_t first_b = 0, first_p = 0;
        const cycle_t done_b = batched.access_burst(
            op.addr, op.nlines, op.is_write, op.arrival, op.task, &first_b);
        const cycle_t done_p = perline_burst(perline, op.addr, op.nlines,
                                             op.is_write, op.arrival, op.task,
                                             &first_p);
        ASSERT_EQ(done_b, done_p) << "burst " << i;
        ASSERT_EQ(first_b, first_p) << "burst " << i;
    }
    expect_stats_eq(batched.stats(), perline.stats());
    EXPECT_EQ(snapshot_of(batched), snapshot_of(perline));
    for (task_id t = 0; t < 3; ++t)
        EXPECT_EQ(batched.task_bytes(t), perline.task_bytes(t));
}

TEST(dram_batched, regulator_budget_edges_match_perline_reference) {
    dram_system batched{dram_config{}};
    dram_system perline{dram_config{}};
    // Tight shares so bursts routinely straddle an epoch budget edge and
    // access_burst must fall back to the exact per-line walk (throttle
    // counting, window advances) mid-run.
    for (dram_system* d : {&batched, &perline}) {
        d->set_task_share(0, 0.02);
        d->set_task_share(1, 0.5);
        // Task 2 stays unregulated: the bulk-commit fast path.
    }
    const auto ops = random_ops(/*seed=*/0x5eed0002, /*count=*/300,
                                /*ntasks=*/3);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const burst_op& op = ops[i];
        cycle_t first_b = 0, first_p = 0;
        const cycle_t done_b = batched.access_burst(
            op.addr, op.nlines, op.is_write, op.arrival, op.task, &first_b);
        const cycle_t done_p = perline_burst(perline, op.addr, op.nlines,
                                             op.is_write, op.arrival, op.task,
                                             &first_p);
        ASSERT_EQ(done_b, done_p) << "burst " << i;
        ASSERT_EQ(first_b, first_p) << "burst " << i;
    }
    EXPECT_GT(batched.stats().throttled, 0u);  // the edge case actually ran
    expect_stats_eq(batched.stats(), perline.stats());
    EXPECT_EQ(snapshot_of(batched), snapshot_of(perline));
}

TEST(dram_batched, attributed_bursts_match_perline_reference) {
    dram_system batched{dram_config{}};
    dram_system perline{dram_config{}};
    obs::latency_attributor attr_b, attr_p;
    batched.set_attribution(&attr_b);
    perline.set_attribution(&attr_p);

    // Three active slots across two tenants, so bursts suffer both
    // self-inflicted and cross-tenant waits (the by-holder aggregation in
    // the batched paths must fold to the same per-tenant sums).
    const char* tenants[3] = {"ta", "tb", "ta"};
    for (task_id s = 0; s < 3; ++s) {
        attr_b.on_dispatch(s, tenants[s]);
        attr_p.on_dispatch(s, tenants[s]);
        attr_b.on_inference_start(s, 0, 0);
        attr_p.on_inference_start(s, 0, 0);
    }

    const auto ops = random_ops(/*seed=*/0x5eed0003, /*count=*/400,
                                /*ntasks=*/3);
    cycle_t horizon = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const burst_op& op = ops[i];
        cycle_t first_b = 0, first_p = 0;
        const cycle_t done_b = batched.access_burst(
            op.addr, op.nlines, op.is_write, op.arrival, op.task, &first_b);
        const cycle_t done_p = perline_burst(perline, op.addr, op.nlines,
                                             op.is_write, op.arrival, op.task,
                                             &first_p);
        ASSERT_EQ(done_b, done_p) << "burst " << i;
        ASSERT_EQ(first_b, first_p) << "burst " << i;
        horizon = std::max(horizon, done_b);
        // Give every slot span so the waterfall has stall to attribute.
        if (op.task >= 0 && op.task < 3) {
            const std::uint64_t span = done_b - op.arrival;
            attr_b.on_layer_retired(op.task, span, span / 2);
            attr_p.on_layer_retired(op.task, span, span / 2);
        }
    }
    expect_stats_eq(batched.stats(), perline.stats());
    EXPECT_EQ(snapshot_of(batched), snapshot_of(perline));

    for (task_id s = 0; s < 3; ++s) {
        attr_b.on_inference_end(s, horizon);
        attr_p.on_inference_end(s, horizon);
    }
    ASSERT_EQ(attr_b.tenant_names(), attr_p.tenant_names());
    const auto n = static_cast<std::uint32_t>(attr_b.tenant_names().size());
    for (std::uint32_t i = 0; i < n; ++i) {
        const auto& tb = attr_b.tenants()[i];
        const auto& tp = attr_p.tenants()[i];
        EXPECT_EQ(tb.completed, tp.completed);
        EXPECT_EQ(tb.latency_cycles, tp.latency_cycles);
        for (std::size_t c = 0; c < 6; ++c)
            EXPECT_EQ(obs::attribution_component(tb.comp, c),
                      obs::attribution_component(tp.comp, c))
                << "tenant " << i << " component "
                << obs::attribution_component_names[c];
        for (std::uint32_t j = 0; j < n; ++j)
            EXPECT_EQ(attr_b.interference(i, j), attr_p.interference(i, j))
                << "matrix (" << i << "," << j << ")";
    }
}

TEST(dram_batched, tiny_boundary_widths_match_perline_reference) {
    // Explicit widths around the tiny/segment dispatch boundary (channels
    // = 4 in the stock config): 1..channels goes through burst_tiny,
    // channels+1 through the segment paths.
    const dram_config cfg{};
    for (std::uint64_t n : {std::uint64_t{1}, std::uint64_t{2},
                            std::uint64_t{4}, std::uint64_t{5},
                            std::uint64_t{8}}) {
        dram_system batched{cfg};
        dram_system perline{cfg};
        cycle_t clock = 0;
        for (int rep = 0; rep < 64; ++rep) {
            const addr_t addr =
                static_cast<addr_t>(rep) * 7 * line_bytes;  // stride: mixes
            cycle_t fb = 0, fp = 0;                         // hit and miss
            const cycle_t db =
                batched.access_burst(addr, n, rep & 1, clock, 0, &fb);
            const cycle_t dp =
                perline_burst(perline, addr, n, rep & 1, clock, 0, &fp);
            ASSERT_EQ(db, dp) << "nlines " << n << " rep " << rep;
            ASSERT_EQ(fb, fp) << "nlines " << n << " rep " << rep;
            clock += (rep % 3 == 0) ? 0 : 37;
        }
        expect_stats_eq(batched.stats(), perline.stats());
        EXPECT_EQ(snapshot_of(batched), snapshot_of(perline));
    }
}

TEST(dram_batched, non_pow2_geometry_uses_exact_perline_walk) {
    // A 3-channel geometry cannot use the pow2 decode, so access_burst
    // must take the authoritative per-line walk — equivalence holds by
    // construction, but the dispatch itself is what this pins down.
    dram_config cfg;
    cfg.channels = 3;
    dram_system batched{cfg};
    dram_system perline{cfg};
    const auto ops = random_ops(/*seed=*/0x5eed0004, /*count=*/100,
                                /*ntasks=*/2);
    for (const burst_op& op : ops) {
        const cycle_t done_b = batched.access_burst(
            op.addr, op.nlines, op.is_write, op.arrival, op.task);
        const cycle_t done_p = perline_burst(perline, op.addr, op.nlines,
                                             op.is_write, op.arrival, op.task,
                                             nullptr);
        ASSERT_EQ(done_b, done_p);
    }
    expect_stats_eq(batched.stats(), perline.stats());
    EXPECT_EQ(snapshot_of(batched), snapshot_of(perline));
}

}  // namespace
}  // namespace camdn::dram

// Tests for the compact MCT serialization: lossless round-trips and
// diagnosable failures on malformed documents.
#include <gtest/gtest.h>

#include <sstream>

#include "mapping/layer_mapper.h"
#include "mapping/mct_io.h"
#include "model/model_zoo.h"

namespace camdn::mapping {
namespace {

void expect_candidates_equal(const mapping_candidate& a,
                             const mapping_candidate& b) {
    EXPECT_EQ(a.usage_level, b.usage_level);
    EXPECT_EQ(a.is_lbm, b.is_lbm);
    EXPECT_EQ(a.tm, b.tm);
    EXPECT_EQ(a.tn, b.tn);
    EXPECT_EQ(a.tk, b.tk);
    EXPECT_EQ(a.flow, b.flow);
    EXPECT_EQ(a.weights_pinned_bytes, b.weights_pinned_bytes);
    EXPECT_EQ(a.input_pinned_bytes, b.input_pinned_bytes);
    EXPECT_EQ(a.input_from_region, b.input_from_region);
    EXPECT_EQ(a.output_to_region, b.output_to_region);
    EXPECT_EQ(a.weight_passes, b.weight_passes);
    EXPECT_EQ(a.input_passes, b.input_passes);
    EXPECT_EQ(a.pages_needed, b.pages_needed);
    EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
    EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes);
    EXPECT_EQ(a.cache_read_bytes, b.cache_read_bytes);
    EXPECT_EQ(a.cache_write_bytes, b.cache_write_bytes);
    EXPECT_EQ(a.compute_cycles, b.compute_cycles);
    EXPECT_EQ(a.est_cycles, b.est_cycles);
}

class mct_roundtrip : public ::testing::TestWithParam<std::string> {};

TEST_P(mct_roundtrip, is_lossless) {
    const auto& m = model::model_by_abbr(GetParam());
    const auto original = map_model(m, mapper_config{});
    const auto restored = mapping_from_string(mapping_to_string(original));

    EXPECT_EQ(restored.model_name, original.model_name);
    ASSERT_EQ(restored.blocks.size(), original.blocks.size());
    for (std::size_t b = 0; b < original.blocks.size(); ++b) {
        EXPECT_EQ(restored.blocks[b].first, original.blocks[b].first);
        EXPECT_EQ(restored.blocks[b].last, original.blocks[b].last);
        EXPECT_EQ(restored.blocks[b].peak_bytes, original.blocks[b].peak_bytes);
        EXPECT_EQ(restored.blocks[b].out_offset, original.blocks[b].out_offset);
    }
    ASSERT_EQ(restored.tables.size(), original.tables.size());
    for (std::size_t i = 0; i < original.tables.size(); ++i) {
        ASSERT_EQ(restored.tables[i].lwm.size(), original.tables[i].lwm.size());
        for (std::size_t c = 0; c < original.tables[i].lwm.size(); ++c)
            expect_candidates_equal(restored.tables[i].lwm[c],
                                    original.tables[i].lwm[c]);
        ASSERT_EQ(restored.tables[i].lbm.has_value(),
                  original.tables[i].lbm.has_value());
        if (original.tables[i].lbm)
            expect_candidates_equal(*restored.tables[i].lbm,
                                    *original.tables[i].lbm);
    }
    EXPECT_EQ(restored.layer_est, original.layer_est);
    EXPECT_EQ(restored.block_est, original.block_est);
    EXPECT_EQ(restored.block_of, original.block_of);
}

INSTANTIATE_TEST_SUITE_P(all_models, mct_roundtrip,
                         ::testing::Values("RS.", "MB.", "EF.", "VT.", "BE.",
                                           "GN.", "WV.", "PP."));

TEST(mct_io, double_roundtrip_is_stable) {
    const auto& m = model::model_by_abbr("MB.");
    const auto original = map_model(m, mapper_config{});
    const std::string once = mapping_to_string(original);
    const std::string twice = mapping_to_string(mapping_from_string(once));
    EXPECT_EQ(once, twice);
}

TEST(mct_io, rejects_bad_magic) {
    std::istringstream is("not-a-mapping\n");
    EXPECT_THROW(read_mapping(is), std::runtime_error);
}

TEST(mct_io, rejects_truncated_document) {
    const auto& m = model::model_by_abbr("GN.");
    std::string text = mapping_to_string(map_model(m, mapper_config{}));
    text.resize(text.size() / 2);
    EXPECT_THROW(mapping_from_string(text), std::runtime_error);
}

TEST(mct_io, rejects_malformed_candidate_line) {
    std::string text =
        "camdn-mapping-v1\n"
        "model broken\n"
        "blocks 1\n"
        "block 0 0 64 0\n"
        "layers 1\n"
        "layer 0 100 1 0\n"
        "LWM garbage\n";
    EXPECT_THROW(mapping_from_string(text), std::runtime_error);
}

TEST(mct_io, error_message_carries_line_number) {
    std::string text =
        "camdn-mapping-v1\n"
        "model broken\n"
        "blocks 0\n"
        "layers 1\n"
        "layer 7 0 0 0\n";  // wrong index
    try {
        mapping_from_string(text);
        FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos);
    }
}

}  // namespace
}  // namespace camdn::mapping

// Tests of the parallel sweep engine: parallel execution must be
// bit-identical to sequential execution, and the memoized isolated-latency
// cache must agree with the uncached reference.
#include <gtest/gtest.h>

#include "model/model_zoo.h"
#include "sim/experiment.h"
#include "sim/sweep.h"

namespace camdn::sim {
namespace {

std::vector<experiment_config> mixed_configs() {
    std::vector<experiment_config> cfgs;
    const policy pols[] = {policy::shared_baseline, policy::moca,
                           policy::aurora, policy::camdn_hw_only,
                           policy::camdn_full};
    for (std::size_t i = 0; i < 5; ++i) {
        experiment_config cfg;
        cfg.pol = pols[i];
        cfg.workload = {&model::model_by_abbr("RS."),
                        &model::model_by_abbr("MB.")};
        cfg.co_located = 4;
        cfg.inferences_per_slot = 1;
        cfg.seed = 11 + i;
        cfgs.push_back(std::move(cfg));
    }
    // One open-loop config in the mix: the sweep engine must be agnostic
    // to the workload generator.
    experiment_config open;
    open.pol = policy::camdn_full;
    open.kind = runtime::workload_kind::open_loop_poisson;
    open.workload = {&model::model_by_abbr("MB.")};
    open.co_located = 2;
    open.arrival_rate_per_ms = 4.0;
    open.total_arrivals = 6;
    open.seed = 3;
    cfgs.push_back(std::move(open));
    return cfgs;
}

void expect_identical(const experiment_result& a, const experiment_result& b) {
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.dram_total_bytes, b.dram_total_bytes);
    EXPECT_EQ(a.rejected_arrivals, b.rejected_arrivals);
    EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
    ASSERT_EQ(a.completions.size(), b.completions.size());
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
        EXPECT_EQ(a.completions[i].slot, b.completions[i].slot);
        EXPECT_EQ(a.completions[i].abbr, b.completions[i].abbr);
        EXPECT_EQ(a.completions[i].arrival, b.completions[i].arrival);
        EXPECT_EQ(a.completions[i].start, b.completions[i].start);
        EXPECT_EQ(a.completions[i].end, b.completions[i].end);
        EXPECT_EQ(a.completions[i].dram_bytes, b.completions[i].dram_bytes);
        EXPECT_EQ(a.completions[i].cores, b.completions[i].cores);
    }
}

TEST(sweep, parallel_results_are_bit_identical_to_sequential) {
    const auto cfgs = mixed_configs();
    const auto sequential = run_sweep(cfgs, 1);
    const auto parallel = run_sweep(cfgs, 4);
    ASSERT_EQ(sequential.size(), cfgs.size());
    ASSERT_EQ(parallel.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        expect_identical(sequential[i], parallel[i]);
}

TEST(sweep, matches_direct_run_experiment) {
    const auto cfgs = mixed_configs();
    const auto swept = run_sweep(cfgs, 4);
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        expect_identical(run_experiment(cfgs[i]), swept[i]);
}

TEST(sweep, preserves_input_order) {
    const auto cfgs = mixed_configs();
    const auto results = run_sweep(cfgs, 4);
    // Each config has a distinct completion count or workload signature;
    // the co_located=2 open-loop config sits last.
    EXPECT_EQ(results.back().completions.size(), 6u);
    for (std::size_t i = 0; i + 1 < cfgs.size(); ++i)
        EXPECT_EQ(results[i].completions.size(), 4u);
}

TEST(sweep, empty_input_yields_empty_output) {
    EXPECT_TRUE(run_sweep({}, 4).empty());
}

TEST(sweep, more_threads_than_configs_is_fine) {
    std::vector<experiment_config> cfgs(1);
    cfgs[0].pol = policy::shared_baseline;
    cfgs[0].workload = {&model::model_by_abbr("MB.")};
    cfgs[0].co_located = 2;
    cfgs[0].seed = 1;
    const auto results = run_sweep(cfgs, 16);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].completions.size(), 2u);
}

// ---- adaptive-controller determinism --------------------------------
// Same seed + config must yield bit-identical experiment_result AND
// telemetry snapshots regardless of sweep thread-pool width: the feedback
// controller's decision path is event-ordered simulation state only.

void expect_telemetry_identical(const experiment_result& a,
                                const experiment_result& b) {
    ASSERT_EQ(a.telemetry.size(), b.telemetry.size());
    for (std::size_t e = 0; e < a.telemetry.size(); ++e) {
        const auto& x = a.telemetry[e];
        const auto& y = b.telemetry[e];
        EXPECT_EQ(x.index, y.index);
        EXPECT_EQ(x.start, y.start);
        EXPECT_EQ(x.end, y.end);
        EXPECT_EQ(x.dram_bytes, y.dram_bytes);
        EXPECT_EQ(x.dram_throttled, y.dram_throttled);
        EXPECT_EQ(x.idle_pages, y.idle_pages);
        EXPECT_EQ(x.active_slots, y.active_slots);
        EXPECT_DOUBLE_EQ(x.bw_utilization, y.bw_utilization);
        ASSERT_EQ(x.tasks.size(), y.tasks.size());
        for (std::size_t s = 0; s < x.tasks.size(); ++s) {
            const auto& p = x.tasks[s];
            const auto& q = y.tasks[s];
            EXPECT_EQ(p.cache_hits, q.cache_hits);
            EXPECT_EQ(p.cache_misses, q.cache_misses);
            EXPECT_EQ(p.region_lines, q.region_lines);
            EXPECT_EQ(p.fill_lines, q.fill_lines);
            EXPECT_EQ(p.dma_bytes, q.dma_bytes);
            EXPECT_EQ(p.layers_retired, q.layers_retired);
            EXPECT_EQ(p.lbm_layers, q.lbm_layers);
            EXPECT_EQ(p.page_wait_cycles, q.page_wait_cycles);
            EXPECT_EQ(p.page_timeouts, q.page_timeouts);
            EXPECT_EQ(p.lbm_downgrades, q.lbm_downgrades);
            EXPECT_EQ(p.completions, q.completions);
            EXPECT_EQ(p.deadline_misses, q.deadline_misses);
            EXPECT_EQ(p.slack_cycles, q.slack_cycles);
        }
    }
}

std::vector<experiment_config> adaptive_configs() {
    std::vector<experiment_config> cfgs;

    experiment_config bursty;
    bursty.pol = policy::camdn_adaptive;
    bursty.kind = runtime::workload_kind::open_loop_mmpp;
    bursty.workload = {&model::model_by_abbr("MB."),
                       &model::model_by_abbr("RS.")};
    bursty.co_located = 4;
    bursty.arrival_rate_per_ms = 3.0;
    bursty.mmpp_rate_scale = {0.25, 4.0};
    bursty.mmpp_sojourn_ms = 2.0;
    bursty.total_arrivals = 10;
    bursty.seed = 7;
    cfgs.push_back(bursty);

    experiment_config qos = bursty;
    qos.kind = runtime::workload_kind::tenant_churn;
    qos.qos_mode = true;  // exercises the slack-driven bandwidth caps
    qos.seed = 9;
    cfgs.push_back(std::move(qos));

    experiment_config closed;
    closed.pol = policy::camdn_adaptive;
    closed.workload = {&model::model_by_abbr("MB."),
                       &model::model_by_abbr("EF.")};
    closed.co_located = 4;
    closed.inferences_per_slot = 2;
    closed.seed = 21;
    cfgs.push_back(std::move(closed));
    return cfgs;
}

TEST(sweep, adaptive_policy_is_bit_identical_across_pool_widths) {
    const auto cfgs = adaptive_configs();
    const auto sequential = run_sweep(cfgs, 1);
    const auto parallel = run_sweep(cfgs, 4);
    ASSERT_EQ(sequential.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        expect_identical(sequential[i], parallel[i]);
        expect_telemetry_identical(sequential[i], parallel[i]);
        EXPECT_FALSE(sequential[i].telemetry.empty());
    }
}

TEST(sweep, adaptive_policy_repeated_run_is_bit_identical) {
    const auto cfgs = adaptive_configs();
    const auto first = run_sweep(cfgs, 2);
    const auto second = run_sweep(cfgs, 3);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        expect_identical(first[i], second[i]);
        expect_telemetry_identical(first[i], second[i]);
    }
}

TEST(sweep, telemetry_only_recording_never_changes_results) {
    // cfg.telemetry on a static policy must observe without perturbing:
    // the instrumented run stays bit-identical to the bare one.
    auto cfgs = mixed_configs();
    auto observed = cfgs;
    for (auto& c : observed) c.telemetry = true;
    const auto bare = run_sweep(cfgs, 2);
    const auto instrumented = run_sweep(observed, 2);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        expect_identical(bare[i], instrumented[i]);
        EXPECT_TRUE(bare[i].telemetry.empty());
        EXPECT_FALSE(instrumented[i].telemetry.empty());
    }
}

TEST(sweep, cached_isolated_latencies_match_uncached_reference) {
    clear_isolated_latency_cache();
    soc_config soc;
    std::vector<const model::model*> models{&model::model_by_abbr("MB."),
                                            &model::model_by_abbr("EF.")};
    const auto& cached = cached_isolated_latencies(soc, models);
    const auto reference = isolated_latencies(soc, models);
    EXPECT_EQ(cached, reference);
}

TEST(sweep, cached_isolated_latencies_memoizes_per_key) {
    clear_isolated_latency_cache();
    soc_config soc;
    std::vector<const model::model*> models{&model::model_by_abbr("MB.")};
    const auto& first = cached_isolated_latencies(soc, models);
    const auto& second = cached_isolated_latencies(soc, models);
    EXPECT_EQ(&first, &second);  // same cache entry, no recompute

    // A different SoC is a different key.
    soc_config big = soc;
    big.cache.total_bytes = mib(64);
    const auto& other = cached_isolated_latencies(big, models);
    EXPECT_NE(&first, &other);

    // So is a different model set.
    std::vector<const model::model*> more{&model::model_by_abbr("MB."),
                                          &model::model_by_abbr("RS.")};
    const auto& wider = cached_isolated_latencies(soc, more);
    EXPECT_NE(&first, &wider);
    EXPECT_EQ(wider.count("RS."), 1u);
}

}  // namespace
}  // namespace camdn::sim

// Tests of the parallel sweep engine: parallel execution must be
// bit-identical to sequential execution, and the memoized isolated-latency
// cache must agree with the uncached reference.
#include <gtest/gtest.h>

#include "model/model_zoo.h"
#include "sim/experiment.h"
#include "sim/sweep.h"

namespace camdn::sim {
namespace {

std::vector<experiment_config> mixed_configs() {
    std::vector<experiment_config> cfgs;
    const policy pols[] = {policy::shared_baseline, policy::moca,
                           policy::aurora, policy::camdn_hw_only,
                           policy::camdn_full};
    for (std::size_t i = 0; i < 5; ++i) {
        experiment_config cfg;
        cfg.pol = pols[i];
        cfg.workload = {&model::model_by_abbr("RS."),
                        &model::model_by_abbr("MB.")};
        cfg.co_located = 4;
        cfg.inferences_per_slot = 1;
        cfg.seed = 11 + i;
        cfgs.push_back(std::move(cfg));
    }
    // One open-loop config in the mix: the sweep engine must be agnostic
    // to the workload generator.
    experiment_config open;
    open.pol = policy::camdn_full;
    open.kind = runtime::workload_kind::open_loop_poisson;
    open.workload = {&model::model_by_abbr("MB.")};
    open.co_located = 2;
    open.arrival_rate_per_ms = 4.0;
    open.total_arrivals = 6;
    open.seed = 3;
    cfgs.push_back(std::move(open));
    return cfgs;
}

void expect_identical(const experiment_result& a, const experiment_result& b) {
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.dram_total_bytes, b.dram_total_bytes);
    EXPECT_EQ(a.rejected_arrivals, b.rejected_arrivals);
    EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
    ASSERT_EQ(a.completions.size(), b.completions.size());
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
        EXPECT_EQ(a.completions[i].slot, b.completions[i].slot);
        EXPECT_EQ(a.completions[i].abbr, b.completions[i].abbr);
        EXPECT_EQ(a.completions[i].arrival, b.completions[i].arrival);
        EXPECT_EQ(a.completions[i].start, b.completions[i].start);
        EXPECT_EQ(a.completions[i].end, b.completions[i].end);
        EXPECT_EQ(a.completions[i].dram_bytes, b.completions[i].dram_bytes);
        EXPECT_EQ(a.completions[i].cores, b.completions[i].cores);
    }
}

TEST(sweep, parallel_results_are_bit_identical_to_sequential) {
    const auto cfgs = mixed_configs();
    const auto sequential = run_sweep(cfgs, 1);
    const auto parallel = run_sweep(cfgs, 4);
    ASSERT_EQ(sequential.size(), cfgs.size());
    ASSERT_EQ(parallel.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        expect_identical(sequential[i], parallel[i]);
}

TEST(sweep, matches_direct_run_experiment) {
    const auto cfgs = mixed_configs();
    const auto swept = run_sweep(cfgs, 4);
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        expect_identical(run_experiment(cfgs[i]), swept[i]);
}

TEST(sweep, preserves_input_order) {
    const auto cfgs = mixed_configs();
    const auto results = run_sweep(cfgs, 4);
    // Each config has a distinct completion count or workload signature;
    // the co_located=2 open-loop config sits last.
    EXPECT_EQ(results.back().completions.size(), 6u);
    for (std::size_t i = 0; i + 1 < cfgs.size(); ++i)
        EXPECT_EQ(results[i].completions.size(), 4u);
}

TEST(sweep, empty_input_yields_empty_output) {
    EXPECT_TRUE(run_sweep({}, 4).empty());
}

TEST(sweep, more_threads_than_configs_is_fine) {
    std::vector<experiment_config> cfgs(1);
    cfgs[0].pol = policy::shared_baseline;
    cfgs[0].workload = {&model::model_by_abbr("MB.")};
    cfgs[0].co_located = 2;
    cfgs[0].seed = 1;
    const auto results = run_sweep(cfgs, 16);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].completions.size(), 2u);
}

TEST(sweep, cached_isolated_latencies_match_uncached_reference) {
    clear_isolated_latency_cache();
    soc_config soc;
    std::vector<const model::model*> models{&model::model_by_abbr("MB."),
                                            &model::model_by_abbr("EF.")};
    const auto& cached = cached_isolated_latencies(soc, models);
    const auto reference = isolated_latencies(soc, models);
    EXPECT_EQ(cached, reference);
}

TEST(sweep, cached_isolated_latencies_memoizes_per_key) {
    clear_isolated_latency_cache();
    soc_config soc;
    std::vector<const model::model*> models{&model::model_by_abbr("MB.")};
    const auto& first = cached_isolated_latencies(soc, models);
    const auto& second = cached_isolated_latencies(soc, models);
    EXPECT_EQ(&first, &second);  // same cache entry, no recompute

    // A different SoC is a different key.
    soc_config big = soc;
    big.cache.total_bytes = mib(64);
    const auto& other = cached_isolated_latencies(big, models);
    EXPECT_NE(&first, &other);

    // So is a different model set.
    std::vector<const model::model*> more{&model::model_by_abbr("MB."),
                                          &model::model_by_abbr("RS.")};
    const auto& wider = cached_isolated_latencies(soc, more);
    EXPECT_NE(&first, &wider);
    EXPECT_EQ(wider.count("RS."), 1u);
}

}  // namespace
}  // namespace camdn::sim

// Tests for the heuristic-solver-hybrid layer mapper and whole-model
// mapping: candidate ladders, dominance, budget feasibility, determinism.
#include <gtest/gtest.h>

#include "mapping/layer_mapper.h"
#include "model/model_zoo.h"

namespace camdn::mapping {
namespace {

mapper_config default_cfg() { return mapper_config{}; }

const model_mapping& mapping_of(const std::string& abbr) {
    static std::map<std::string, model_mapping> cache;
    auto it = cache.find(abbr);
    if (it == cache.end()) {
        it = cache
                 .emplace(abbr, map_model(model::model_by_abbr(abbr),
                                          default_cfg()))
                 .first;
    }
    return it->second;
}

TEST(layer_mapper, minimal_candidate_needs_no_pages) {
    const auto& mm = mapping_of("RS.");
    for (const auto& table : mm.tables) {
        ASSERT_FALSE(table.lwm.empty());
        EXPECT_EQ(table.lwm.front().pages_needed, 0u);
        EXPECT_EQ(&table.minimal(), &table.lwm.front());
    }
}

TEST(layer_mapper, dominance_more_pages_strictly_less_dram) {
    for (const char* abbr : {"RS.", "VT.", "PP."}) {
        const auto& mm = mapping_of(abbr);
        for (const auto& table : mm.tables) {
            for (std::size_t i = 1; i < table.lwm.size(); ++i) {
                EXPECT_GT(table.lwm[i].pages_needed,
                          table.lwm[i - 1].pages_needed);
                EXPECT_LT(table.lwm[i].dram_bytes(),
                          table.lwm[i - 1].dram_bytes());
            }
        }
    }
}

TEST(layer_mapper, candidates_respect_their_usage_level) {
    const auto& mm = mapping_of("VT.");
    const mapper_config cfg = default_cfg();
    for (const auto& table : mm.tables) {
        for (const auto& c : table.lwm) {
            if (c.pages_needed == 0) continue;
            EXPECT_LE(c.pages_needed * cfg.page_bytes, c.usage_level);
        }
    }
}

TEST(layer_mapper, tiles_fit_the_scratchpad_budget) {
    const mapper_config cfg = default_cfg();
    for (const char* abbr : {"RS.", "MB.", "BE.", "PP."}) {
        const auto& mm = mapping_of(abbr);
        const auto& m = model::model_by_abbr(abbr);
        for (std::size_t i = 0; i < m.layers.size(); ++i) {
            const auto& l = m.layers[i];
            if (l.kind != model::layer_kind::conv &&
                l.kind != model::layer_kind::gemm)
                continue;
            for (const auto& c : mm.tables[i].lwm) {
                EXPECT_LE(tile_footprint_bytes(c.tm, c.tn, c.tk),
                          cfg.tile_budget())
                    << abbr << " layer " << i;
            }
        }
    }
}

TEST(layer_mapper, lbm_exists_exactly_for_multi_layer_blocks) {
    const auto& mm = mapping_of("MB.");
    for (std::size_t i = 0; i < mm.tables.size(); ++i) {
        const auto& block = mm.blocks[mm.block_of[i]];
        EXPECT_EQ(mm.tables[i].lbm.has_value(), block.size() >= 2)
            << "layer " << i;
    }
}

TEST(layer_mapper, lbm_candidates_carry_block_pages_and_flags) {
    const auto& mm = mapping_of("MB.");
    const mapper_config cfg = default_cfg();
    for (std::size_t i = 0; i < mm.tables.size(); ++i) {
        if (!mm.tables[i].lbm) continue;
        const auto& block = mm.blocks[mm.block_of[i]];
        const auto& c = *mm.tables[i].lbm;
        EXPECT_TRUE(c.is_lbm);
        EXPECT_EQ(c.pages_needed, ceil_div(block.peak_bytes, cfg.page_bytes));
        EXPECT_EQ(c.input_from_region, i != block.first);
        EXPECT_EQ(c.output_to_region, i != block.last);
    }
}

TEST(layer_mapper, lbm_reduces_dram_versus_minimal_inside_block) {
    const auto& mm = mapping_of("EF.");
    std::uint64_t lbm_wins = 0, comparisons = 0;
    for (const auto& table : mm.tables) {
        if (!table.lbm) continue;
        ++comparisons;
        lbm_wins += table.lbm->dram_bytes() < table.minimal().dram_bytes();
    }
    ASSERT_GT(comparisons, 0u);
    EXPECT_GT(static_cast<double>(lbm_wins) / comparisons, 0.8);
}

TEST(layer_mapper, deterministic) {
    const auto a = map_model(model::model_by_abbr("GN."), default_cfg());
    const auto b = map_model(model::model_by_abbr("GN."), default_cfg());
    ASSERT_EQ(a.tables.size(), b.tables.size());
    for (std::size_t i = 0; i < a.tables.size(); ++i) {
        ASSERT_EQ(a.tables[i].lwm.size(), b.tables[i].lwm.size());
        for (std::size_t c = 0; c < a.tables[i].lwm.size(); ++c) {
            EXPECT_EQ(a.tables[i].lwm[c].dram_bytes(),
                      b.tables[i].lwm[c].dram_bytes());
            EXPECT_EQ(a.tables[i].lwm[c].tm, b.tables[i].lwm[c].tm);
        }
    }
}

TEST(layer_mapper, block_metadata_is_consistent) {
    for (const char* abbr : {"RS.", "WV."}) {
        const auto& mm = mapping_of(abbr);
        for (std::uint32_t i = 0; i < mm.tables.size(); ++i) {
            const auto& block = mm.block_of_layer(i);
            EXPECT_GE(i, block.first);
            EXPECT_LE(i, block.last);
            EXPECT_EQ(mm.is_block_head(i), i == block.first);
            EXPECT_EQ(mm.is_block_tail(i), i == block.last);
        }
        EXPECT_EQ(mm.layer_est.size(), mm.tables.size());
        EXPECT_EQ(mm.block_est.size(), mm.blocks.size());
        for (auto est : mm.block_est) EXPECT_GT(est, 0u);
    }
}

TEST(layer_mapper, more_cache_never_more_traffic_ladder_property) {
    // The candidate ladder is the paper's adaptability mechanism: DRAM
    // bytes are non-increasing in the usage level actually granted.
    for (const auto& m : model::benchmark_models()) {
        const auto mm = map_model(m, default_cfg());
        for (const auto& table : mm.tables) {
            for (std::size_t i = 1; i < table.lwm.size(); ++i)
                EXPECT_LE(table.lwm[i].dram_bytes(),
                          table.lwm[i - 1].dram_bytes());
        }
    }
}

// Parameterized: mapping respects scratchpad scaling.
class mapper_scratchpad : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(mapper_scratchpad, minimal_dram_non_increasing_in_scratchpad) {
    mapper_config small_cfg = default_cfg();
    small_cfg.npu.scratchpad_bytes = GetParam();
    mapper_config big_cfg = default_cfg();
    big_cfg.npu.scratchpad_bytes = GetParam() * 2;

    const auto& m = model::model_by_abbr("RS.");
    const auto small = map_model(m, small_cfg);
    const auto big = map_model(m, big_cfg);
    std::uint64_t small_total = 0, big_total = 0;
    for (std::size_t i = 0; i < m.layers.size(); ++i) {
        small_total += small.tables[i].minimal().dram_bytes();
        big_total += big.tables[i].minimal().dram_bytes();
    }
    EXPECT_LE(big_total, small_total);
}

INSTANTIATE_TEST_SUITE_P(scratchpads, mapper_scratchpad,
                         ::testing::Values(kib(64), kib(128), kib(256)));

}  // namespace
}  // namespace camdn::mapping

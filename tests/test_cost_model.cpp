// Tests for the mapping cost model: footprint arithmetic, traffic
// conservation, partial pinning monotonicity and stationary dataflows.
#include <gtest/gtest.h>

#include "mapping/cost_model.h"
#include "model/model_zoo.h"

namespace camdn::mapping {
namespace {

model::layer make_gemm(std::uint64_t m, std::uint64_t n, std::uint64_t k) {
    model::layer l;
    l.kind = model::layer_kind::gemm;
    l.m = m;
    l.n = n;
    l.k = k;
    l.input_bytes = m * k;
    l.weight_bytes = n * k;
    l.output_bytes = m * n;
    return l;
}

mapping_candidate finalize(const model::layer& l, mapping_candidate cand,
                           const mapper_config& cfg = {},
                           std::uint64_t lbm_pages = 0) {
    finalize_candidate(l, cfg, cand, /*in_block_residual=*/false, lbm_pages);
    return cand;
}

TEST(cost_model, tile_footprint_formula) {
    // int8 input rows + int8 weight cols + int32 accumulators.
    EXPECT_EQ(tile_footprint_bytes(32, 64, 128),
              32u * 128 + 128u * 64 + 32u * 64 * 4);
}

TEST(cost_model, streaming_candidate_traffic) {
    const auto l = make_gemm(1024, 1024, 1024);
    mapping_candidate c;
    c.tm = 128;
    c.tn = 128;
    c.tk = 256;
    const auto out = finalize(l, c);
    EXPECT_EQ(out.weight_passes, 8u);
    EXPECT_EQ(out.input_passes, 8u);
    EXPECT_EQ(out.dram_read_bytes,
              l.weight_bytes * 8 + l.input_bytes * 8);
    EXPECT_EQ(out.dram_write_bytes, l.output_bytes);
    EXPECT_EQ(out.pages_needed, 0u);
}

TEST(cost_model, weight_stationary_when_tile_covers_tensor) {
    const auto l = make_gemm(4096, 64, 128);  // small weights
    mapping_candidate c;
    c.tm = 128;
    c.tn = 64;   // whole n
    c.tk = 128;  // whole k -> weights resident
    const auto out = finalize(l, c);
    EXPECT_EQ(out.weight_passes, 1u);
    EXPECT_EQ(out.flow, dataflow::output_stationary);  // ip == wp == 1
    EXPECT_EQ(out.dram_read_bytes, l.weight_bytes + l.input_bytes);
}

TEST(cost_model, input_stationary_when_tile_covers_input) {
    const auto l = make_gemm(64, 4096, 128);
    mapping_candidate c;
    c.tm = 64;   // whole m
    c.tn = 128;
    c.tk = 128;  // whole k -> input resident
    const auto out = finalize(l, c);
    EXPECT_EQ(out.input_passes, 1u);
    EXPECT_GT(out.weight_passes, 0u);
}

TEST(cost_model, partial_k_tiles_disable_stationarity) {
    const auto l = make_gemm(4096, 64, 1024);
    mapping_candidate c;
    c.tm = 128;
    c.tn = 64;
    c.tk = 256;  // reduction split: weight tile is not the whole tensor
    const auto out = finalize(l, c);
    EXPECT_EQ(out.weight_passes, ceil_div(l.m, c.tm));
}

TEST(cost_model, full_pinning_eliminates_refetch) {
    const auto l = make_gemm(1024, 1024, 1024);
    mapping_candidate c;
    c.tm = 128;
    c.tn = 128;
    c.tk = 256;
    c.weights_pinned_bytes = l.weight_bytes;
    const auto out = finalize(l, c);
    EXPECT_EQ(out.dram_read_bytes, l.weight_bytes + l.input_bytes * 8);
    EXPECT_EQ(out.cache_read_bytes, l.weight_bytes * 8);
    EXPECT_EQ(out.cache_write_bytes, l.weight_bytes);
    EXPECT_EQ(out.pages_needed, ceil_div(l.weight_bytes, kib(32)));
}

TEST(cost_model, partial_pinning_is_monotone_in_dram) {
    const auto l = make_gemm(1024, 1024, 1024);
    std::uint64_t prev = UINT64_MAX;
    for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        mapping_candidate c;
        c.tm = 128;
        c.tn = 128;
        c.tk = 256;
        c.input_pinned_bytes =
            static_cast<std::uint64_t>(frac * l.input_bytes);
        const auto out = finalize(l, c);
        EXPECT_LE(out.dram_read_bytes, prev);
        prev = out.dram_read_bytes;
    }
}

TEST(cost_model, pinned_bytes_clamped_to_tensor) {
    const auto l = make_gemm(64, 64, 64);
    mapping_candidate c;
    c.tm = 64;
    c.tn = 64;
    c.tk = 64;
    c.weights_pinned_bytes = mib(100);
    const auto out = finalize(l, c);
    EXPECT_EQ(out.weights_pinned_bytes, l.weight_bytes);
}

TEST(cost_model, lbm_chain_has_zero_intermediate_dram) {
    const auto l = make_gemm(256, 256, 256);
    mapping_candidate c;
    c.is_lbm = true;
    c.tm = 256;
    c.tn = 256;
    c.tk = 256;
    c.input_from_region = true;
    c.output_to_region = true;
    const auto out = finalize(l, c, {}, /*lbm_pages=*/7);
    EXPECT_EQ(out.dram_read_bytes, l.weight_bytes);  // weights only
    EXPECT_EQ(out.dram_write_bytes, 0u);
    EXPECT_EQ(out.pages_needed, 7u);
}

TEST(cost_model, residual_traffic_depends_on_block_residency) {
    auto l = make_gemm(256, 256, 256);
    l.residual_from = 0;
    mapping_candidate c;
    c.tm = 256;
    c.tn = 256;
    c.tk = 256;
    mapping_candidate in_block = c;
    in_block.is_lbm = true;  // only LBM keeps the producer region-resident
    mapper_config cfg;
    finalize_candidate(l, cfg, c, /*in_block_residual=*/true, 0);
    finalize_candidate(l, cfg, in_block, /*in_block_residual=*/true, 4);
    EXPECT_EQ(c.dram_read_bytes - in_block.dram_read_bytes, l.output_bytes);
    EXPECT_GE(in_block.cache_read_bytes, l.output_bytes);
}

TEST(cost_model, estimate_covers_compute_and_traffic) {
    const auto l = make_gemm(2048, 2048, 2048);
    mapping_candidate c;
    c.tm = 256;
    c.tn = 256;
    c.tk = 256;
    const auto out = finalize(l, c);
    EXPECT_GE(out.est_cycles, out.compute_cycles);
    EXPECT_GT(out.compute_cycles, 0u);
}

TEST(cost_model, simple_kinds_have_unit_passes) {
    model::layer l;
    l.kind = model::layer_kind::pool;
    l.m = 1'000'000;
    l.input_bytes = 1'000'000;
    l.output_bytes = 250'000;
    mapping_candidate c;
    c.tm = l.m;
    c.tn = 1;
    c.tk = 1;
    const auto out = finalize(l, c);
    EXPECT_EQ(out.weight_passes, 1u);
    EXPECT_EQ(out.input_passes, 1u);
    EXPECT_EQ(out.dram_read_bytes, l.input_bytes);
}

TEST(cost_model, conservation_total_bytes_accounted) {
    // Every byte of every tensor appears in dram or cache traffic at least
    // once (nothing silently disappears).
    for (const auto& m : model::benchmark_models()) {
        mapper_config cfg;
        for (std::size_t i = 0; i < std::min<std::size_t>(m.layers.size(), 20);
             ++i) {
            const auto& l = m.layers[i];
            mapping_candidate c;
            c.tm = std::min<std::uint64_t>(l.m, 256);
            c.tn = std::min<std::uint64_t>(l.n, 256);
            c.tk = l.k;
            finalize_candidate(l, cfg, c, false, 0);
            const auto moved = c.dram_read_bytes + c.dram_write_bytes +
                               c.cache_read_bytes + c.cache_write_bytes;
            EXPECT_GE(moved, l.input_bytes + l.weight_bytes + l.output_bytes)
                << m.name << ":" << l.name;
        }
    }
}

}  // namespace
}  // namespace camdn::mapping

// Regression tests for the hot-path engine rewrites behind sim_throughput:
//
//   * event_queue — POD heap entries with a pooled closure store: the
//     microbench-shaped throughput smoke, slot reuse under churn, the
//     incremental pending_closures() counter and unchanged cancellable-
//     timer semantics;
//   * dma_engine — flights in a flat id-ordered vector: snapshot bytes of
//     a mid-air state must round-trip identically through a fresh engine
//     (byte compatibility with the std::map encoding it replaced);
//   * percentile_tracker — the sorted two-way merge() stays exact;
//   * mapping registry — interned-name lookups return the same cached
//     mapping, and map_model's per-signature memoization gives repeated
//     layers identical tables.
#include <gtest/gtest.h>

#include <vector>

#include "cache/shared_cache.h"
#include "common/event_queue.h"
#include "common/snapshot_io.h"
#include "common/stats.h"
#include "dram/dram_system.h"
#include "mapping/layer_mapper.h"
#include "model/model_zoo.h"
#include "npu/dma_engine.h"
#include "sim/mapping_registry.h"
#include "sim/soc.h"

namespace camdn {
namespace {

// ---- event queue ------------------------------------------------------

TEST(engine_hotpath, event_queue_schedule_step_throughput_smoke) {
    // Microbench shape: a large interleaved stream of closures and typed
    // events drains completely with exact accounting.
    event_queue eq;
    eq.set_handler(event_channel::dma, [](const typed_event&) {});
    constexpr std::size_t n = 50'000;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
        eq.schedule(i % 997, [&] { ++fired; });
        eq.schedule_event(i % 991, typed_event{0, 0, i, 0});
    }
    EXPECT_EQ(eq.pending(), 2 * n);
    EXPECT_EQ(eq.pending_closures(), n);
    EXPECT_EQ(eq.pending_typed(), n);
    EXPECT_EQ(eq.run(), 2 * n);
    EXPECT_EQ(fired, n);
    EXPECT_EQ(eq.executed_events(), 2 * n);
    EXPECT_EQ(eq.pending_closures(), 0u);
    EXPECT_EQ(eq.pending_typed(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(engine_hotpath, event_queue_pool_reuse_under_churn) {
    // Repeated fill/drain cycles keep the closure accounting exact; the
    // slot pool recycles, so a zero-latency self-rescheduling chain works
    // (each callback claims the slot its predecessor released).
    event_queue eq;
    for (int round = 0; round < 20; ++round) {
        std::size_t fired = 0;
        for (int i = 0; i < 500; ++i)
            eq.schedule_after(i, [&] { ++fired; });
        EXPECT_EQ(eq.pending_closures(), 500u);
        eq.run();
        EXPECT_EQ(fired, 500u);
        EXPECT_EQ(eq.pending_closures(), 0u);
    }
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 1000) eq.schedule_after(0, chain);
    };
    eq.schedule_after(0, chain);
    eq.run();
    EXPECT_EQ(depth, 1000);
}

TEST(engine_hotpath, cancel_decrements_pending_closures_immediately) {
    event_queue eq;
    std::vector<event_queue::timer> timers;
    for (int i = 0; i < 100; ++i)
        timers.push_back(eq.schedule_cancellable(10 + i, [] {}));
    eq.schedule(5, [] {});
    EXPECT_EQ(eq.pending_closures(), 101u);
    // Cancel every other timer: the live count drops at cancel() time,
    // before the dead entries surface at the heap head.
    for (std::size_t i = 0; i < timers.size(); i += 2) timers[i].cancel();
    EXPECT_EQ(eq.pending_closures(), 51u);
    EXPECT_EQ(eq.run(), 51u);
    EXPECT_EQ(eq.pending_closures(), 0u);
    EXPECT_EQ(eq.executed_events(), 51u);  // cancelled entries never count
    for (std::size_t i = 0; i < timers.size(); ++i)
        EXPECT_FALSE(timers[i].armed()) << i;
}

TEST(engine_hotpath, cancellable_timer_semantics_unchanged) {
    event_queue eq;
    int fired = 0;
    auto t = eq.schedule_cancellable(50, [&] { ++fired; });
    EXPECT_TRUE(t.armed());
    EXPECT_EQ(t.when(), 50u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(t.armed());
    t.cancel();  // post-fire cancel stays a harmless no-op
    EXPECT_EQ(eq.pending_closures(), 0u);
    EXPECT_EQ(eq.now(), 50u);

    // A timer outliving its queue must stay safe to cancel.
    event_queue::timer orphan;
    {
        event_queue scoped;
        orphan = scoped.schedule_cancellable(10, [] {});
    }
    orphan.cancel();
    EXPECT_FALSE(orphan.armed());
}

TEST(engine_hotpath, typed_section_bytes_stable_across_restore) {
    event_queue eq;
    eq.set_handler(event_channel::layer, [](const typed_event&) {});
    for (std::uint64_t i = 0; i < 64; ++i)
        eq.schedule_event(100 + (i % 7), typed_event{1, 2, i, i * 3});
    snapshot_writer w;
    eq.save_typed(w);

    event_queue fresh;
    fresh.restore_now(eq.now());
    snapshot_reader r(w.bytes());
    fresh.restore_typed(r);
    fresh.restore_next_seq(eq.next_seq());
    snapshot_writer w2;
    fresh.save_typed(w2);
    EXPECT_EQ(w.bytes(), w2.bytes());
}

// ---- DMA engine -------------------------------------------------------

struct dma_rig {
    event_queue eq;
    dram::dram_system dram{dram::dram_config{}};
    cache::cache_config cfg{};
    cache::shared_cache cache{cfg, dram};
    // The engine registers itself on the queue's dma channel, so pending
    // chunk_done events pump the flights without extra wiring.
    npu::dma_engine dma{eq, cache, /*chunk_lines=*/64, /*window=*/4};

    dma_rig() { dma.set_sink([](const npu::dma_target&, cycle_t) {}); }
};

TEST(engine_hotpath, dma_snapshot_bytes_roundtrip_mid_air) {
    // Several flights with chunks mid-air: the flat-vector flight table
    // must serialize, restore into a fresh engine and re-serialize to the
    // exact same bytes.
    event_queue eq;
    dram::dram_system dram{dram::dram_config{}};
    cache::cache_config ccfg{};
    cache::shared_cache cache{ccfg, dram};
    npu::dma_engine dma{eq, cache, /*chunk_lines=*/64, /*window=*/4};
    dma.set_sink([](const npu::dma_target&, cycle_t) {});

    for (std::uint64_t f = 0; f < 5; ++f) {
        npu::transfer_request req;
        req.op = npu::transfer_request::kind::bypass_read;
        req.task = static_cast<task_id>(f);
        req.addr = f * (1u << 20);
        req.nlines = 2'000 + 333 * f;
        dma.submit_tracked(req, npu::dma_target{f, f * 17});
    }
    ASSERT_EQ(dma.live_flights(), 5u);

    snapshot_writer w;
    dma.save_state(w);

    npu::dma_engine fresh{eq, cache, /*chunk_lines=*/64, /*window=*/4};
    fresh.set_sink([](const npu::dma_target&, cycle_t) {});
    snapshot_reader r(w.bytes());
    fresh.restore_state(r);
    EXPECT_EQ(fresh.live_flights(), 5u);

    snapshot_writer w2;
    fresh.save_state(w2);
    EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(engine_hotpath, dma_flight_table_survives_partial_drain) {
    // Advance the simulation partway so some flights retired and others
    // still hold outstanding chunks, then roundtrip the survivors.
    dma_rig rig;
    for (std::uint64_t f = 0; f < 4; ++f) {
        npu::transfer_request req;
        req.op = npu::transfer_request::kind::bypass_read;
        req.task = 0;
        req.addr = f * (1u << 22);
        req.nlines = 256 * (f + 1);
        rig.dma.submit_tracked(req, npu::dma_target{f, 0});
    }
    rig.eq.run(6);  // partial drain: chunk_done events interleave flights
    ASSERT_GT(rig.dma.live_flights(), 0u);

    snapshot_writer w;
    rig.dma.save_state(w);
    npu::dma_engine fresh{rig.eq, rig.cache, 64, 4};
    fresh.set_sink([](const npu::dma_target&, cycle_t) {});
    snapshot_reader r(w.bytes());
    fresh.restore_state(r);
    snapshot_writer w2;
    fresh.save_state(w2);
    EXPECT_EQ(w.bytes(), w2.bytes());
}

// ---- percentile tracker -----------------------------------------------

TEST(engine_hotpath, percentile_merge_stays_exact) {
    // The sorted two-way merge must agree exactly with inserting every
    // sample into one tracker (deterministic LCG stream, no RNG state).
    std::uint64_t x = 88172645463325252ull;
    auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return static_cast<double>(x % 100'000) / 7.0;
    };
    percentile_tracker a, b, reference;
    a.reserve(1'000);
    for (int i = 0; i < 1'000; ++i) {
        const double v = next();
        a.add(v);
        reference.add(v);
    }
    for (int i = 0; i < 777; ++i) {
        const double v = next();
        b.add(v);
        reference.add(v);
    }
    a.merge(b);
    ASSERT_EQ(a.count(), reference.count());
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
        EXPECT_EQ(a.quantile(q), reference.quantile(q)) << "q=" << q;
    EXPECT_EQ(a.sorted_samples(), reference.sorted_samples());

    // Merging into/from empty trackers keeps the multiset.
    percentile_tracker empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), reference.count());
    percentile_tracker sink;
    sink.merge(a);
    EXPECT_EQ(sink.sorted_samples(), reference.sorted_samples());
}

// ---- mapping registry + memoized MCT ----------------------------------

TEST(engine_hotpath, mapping_registry_interns_and_caches) {
    sim::clear_mapping_registry();
    const sim::soc_config cfg{};
    const auto& m = model::model_by_abbr("RS.");
    const auto& first = sim::mapping_for(m, cfg.mapper());
    const auto& second = sim::mapping_for(m, cfg.mapper());
    EXPECT_EQ(&first, &second);  // same interned (model, config) entry

    const auto snap = sim::snapshot_mappings();
    EXPECT_EQ(snap.find(m, cfg.mapper()), &first);

    // A config differing in a keyed field resolves to a distinct mapping.
    auto other = cfg.mapper();
    other.lbm_max_layers += 1;
    const auto& third = sim::mapping_for(m, other);
    EXPECT_NE(&first, &third);
    sim::clear_mapping_registry();
}

TEST(engine_hotpath, repeated_transformer_layers_share_identical_tables) {
    // BERT's encoder blocks repeat; the memoized map_model must hand every
    // repeat a table identical to the first solve.
    const sim::soc_config cfg{};
    const auto& m = model::make_bert_base();
    const auto mm = mapping::map_model(m, cfg.mapper());
    ASSERT_EQ(mm.tables.size(), m.layers.size());

    int repeats_checked = 0;
    for (std::uint32_t i = 0; i < m.layers.size(); ++i) {
        for (std::uint32_t j = i + 1; j < m.layers.size(); ++j) {
            const auto& a = m.layers[i];
            const auto& b = m.layers[j];
            const auto& ba = mm.blocks[mm.block_of[i]];
            const auto& bb = mm.blocks[mm.block_of[j]];
            const bool same_sig =
                a.kind == b.kind && a.m == b.m && a.n == b.n && a.k == b.k &&
                a.input_bytes == b.input_bytes &&
                a.weight_bytes == b.weight_bytes &&
                a.output_bytes == b.output_bytes &&
                a.weight_is_intermediate == b.weight_is_intermediate &&
                (a.residual_from >= 0) == (b.residual_from >= 0) &&
                mapping::residual_in_block(m, i, ba) ==
                    mapping::residual_in_block(m, j, bb) &&
                (i == ba.first) == (j == bb.first) &&
                (i == ba.last) == (j == bb.last) &&
                (ba.size() >= 2) == (bb.size() >= 2) &&
                (ba.size() >= 2 ? ba.peak_bytes : 0) ==
                    (bb.size() >= 2 ? bb.peak_bytes : 0);
            if (!same_sig) continue;
            ++repeats_checked;
            const auto& ta = mm.tables[i];
            const auto& tb = mm.tables[j];
            ASSERT_EQ(ta.lwm.size(), tb.lwm.size()) << i << " vs " << j;
            for (std::size_t c = 0; c < ta.lwm.size(); ++c) {
                EXPECT_EQ(ta.lwm[c].tm, tb.lwm[c].tm);
                EXPECT_EQ(ta.lwm[c].tn, tb.lwm[c].tn);
                EXPECT_EQ(ta.lwm[c].tk, tb.lwm[c].tk);
                EXPECT_EQ(ta.lwm[c].pages_needed, tb.lwm[c].pages_needed);
                EXPECT_EQ(ta.lwm[c].est_cycles, tb.lwm[c].est_cycles);
            }
            EXPECT_EQ(ta.lbm.has_value(), tb.lbm.has_value());
            if (ta.lbm && tb.lbm)
                EXPECT_EQ(ta.lbm->est_cycles, tb.lbm->est_cycles);
        }
    }
    EXPECT_GT(repeats_checked, 0);  // transformer repeats must exist
}

}  // namespace
}  // namespace camdn

// Unit tests for the chunked, windowed DMA engine.
#include <gtest/gtest.h>

#include "cache/shared_cache.h"
#include "common/event_queue.h"
#include "dram/dram_system.h"
#include "npu/dma_engine.h"

namespace camdn::npu {
namespace {

struct rig {
    event_queue eq;
    dram::dram_system dram{dram::dram_config{}};
    cache::cache_config cfg{};
    cache::shared_cache cache{cfg, dram};
    dma_engine dma{eq, cache, /*chunk_lines=*/128, /*window=*/4};
};

TEST(dma, zero_line_transfer_completes_immediately) {
    rig r;
    bool fired = false;
    transfer_request req;
    req.nlines = 0;
    r.dma.submit(req, [&](cycle_t done) {
        fired = true;
        EXPECT_EQ(done, 0u);
    });
    EXPECT_TRUE(fired);  // no event round needed
}

TEST(dma, processes_every_line_exactly_once) {
    rig r;
    transfer_request req;
    req.op = transfer_request::kind::bypass_read;
    req.task = 0;
    req.addr = 0;
    req.nlines = 1000;
    bool done_fired = false;
    r.dma.submit(req, [&](cycle_t) { done_fired = true; });
    r.eq.run();
    EXPECT_TRUE(done_fired);
    EXPECT_EQ(r.dram.stats().reads, 1000u);
}

TEST(dma, completion_time_is_plausible_for_bandwidth) {
    rig r;
    transfer_request req;
    req.op = transfer_request::kind::bypass_read;
    req.nlines = 16'000;  // 1 MiB
    cycle_t done = 0;
    r.dma.submit(req, [&](cycle_t d) { done = d; });
    r.eq.run();
    // 1 MiB at 102.4 B/cycle is ~10.2K cycles; allow generous latency slack.
    EXPECT_GT(done, 9'000u);
    EXPECT_LT(done, 20'000u);
}

TEST(dma, small_transfer_single_chunk) {
    rig r;
    transfer_request req;
    req.op = transfer_request::kind::transparent_write;
    req.task = 2;
    req.addr = mib(4);
    req.nlines = 5;
    cycle_t done = 0;
    r.dma.submit(req, [&](cycle_t d) { done = d; });
    r.eq.run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(r.cache.stats().misses, 5u);
}

TEST(dma, concurrent_transfers_share_resources) {
    rig r;
    transfer_request a;
    a.op = transfer_request::kind::bypass_read;
    a.addr = 0;
    a.nlines = 8'000;
    transfer_request b = a;
    b.addr = mib(64);

    cycle_t done_a = 0, done_b = 0;
    r.dma.submit(a, [&](cycle_t d) { done_a = d; });
    r.dma.submit(b, [&](cycle_t d) { done_b = d; });
    r.eq.run();

    rig solo;
    transfer_request s = a;
    cycle_t done_solo = 0;
    solo.dma.submit(s, [&](cycle_t d) { done_solo = d; });
    solo.eq.run();

    // With a competitor, each stream takes materially longer than alone.
    EXPECT_GT(std::max(done_a, done_b),
              done_solo + done_solo / 2);
}

TEST(dma, region_transfers_route_to_the_nec) {
    rig r;
    auto pages = r.cache.pages().try_allocate(0, 2).value();
    auto& cpt = r.cache.cpt(0);
    for (std::uint32_t v = 0; v < pages.size(); ++v) cpt.map(v, pages[v]);

    transfer_request req;
    req.op = transfer_request::kind::region_fill;
    req.task = 0;
    req.addr = 0;
    req.dram_addr = mib(8);
    req.nlines = 512;
    r.dma.submit(req, [](cycle_t) {});
    r.eq.run();
    EXPECT_EQ(r.cache.stats().region_fills, 512u);
    EXPECT_EQ(r.dram.stats().reads, 512u);
}

TEST(dma, transfer_now_matches_counts) {
    rig r;
    transfer_request req;
    req.op = transfer_request::kind::bypass_write;
    req.nlines = 64;
    const cycle_t done = r.dma.transfer_now(req, 100);
    EXPECT_GT(done, 100u);
    EXPECT_EQ(r.dram.stats().writes, 64u);
}

TEST(dma, chunk_and_window_accessors) {
    rig r;
    EXPECT_EQ(r.dma.chunk_lines(), 128u);
    EXPECT_EQ(r.dma.window(), 4u);
    dma_engine degenerate(r.eq, r.cache, 0, 0);
    EXPECT_EQ(degenerate.chunk_lines(), 1u);  // clamped
    EXPECT_EQ(degenerate.window(), 1u);
}

// Chunk-size sweep: total work is invariant, completion near-invariant.
class dma_chunking : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(dma_chunking, line_count_invariant_under_chunk_size) {
    event_queue eq;
    dram::dram_system dram{dram::dram_config{}};
    cache::shared_cache cache{cache::cache_config{}, dram};
    dma_engine dma(eq, cache, GetParam(), 4);

    transfer_request req;
    req.op = transfer_request::kind::bypass_read;
    req.nlines = 4'096;
    cycle_t done = 0;
    dma.submit(req, [&](cycle_t d) { done = d; });
    eq.run();
    EXPECT_EQ(dram.stats().reads, 4'096u);
    // 256 KiB at ~102 B/cycle ~ 2.6K cycles; bounded regardless of chunking.
    EXPECT_LT(done, 6'000u);
}

INSTANTIATE_TEST_SUITE_P(chunk_sizes, dma_chunking,
                         ::testing::Values(32, 64, 128, 256, 512, 1024));

}  // namespace
}  // namespace camdn::npu

// Tests for the QoS metric definitions (SLA satisfaction rate, STP,
// fairness — following the AuRORA paper, §IV-A4).
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/qos.h"

namespace camdn::runtime {
namespace {

qos_record rec(const std::string& abbr, cycle_t latency, cycle_t deadline,
               cycle_t isolated) {
    qos_record r;
    r.model_abbr = abbr;
    r.latency = latency;
    r.deadline_rel = deadline;
    r.isolated = isolated;
    return r;
}

TEST(qos, empty_records_zero_metrics) {
    const auto m = compute_qos({}, 8);
    EXPECT_DOUBLE_EQ(m.sla_rate, 0.0);
    EXPECT_DOUBLE_EQ(m.stp, 0.0);
    EXPECT_DOUBLE_EQ(m.fairness, 0.0);
}

TEST(qos, sla_rate_counts_deadline_hits) {
    std::vector<qos_record> records{
        rec("RS.", 100, 200, 100),  // met
        rec("RS.", 300, 200, 100),  // missed
        rec("MB.", 50, 60, 50),     // met
        rec("MB.", 70, 60, 50),     // missed
    };
    const auto m = compute_qos(records, 4);
    EXPECT_DOUBLE_EQ(m.sla_rate, 0.5);
}

TEST(qos, boundary_latency_meets_deadline) {
    const auto m = compute_qos({rec("RS.", 200, 200, 100)}, 1);
    EXPECT_DOUBLE_EQ(m.sla_rate, 1.0);
}

TEST(qos, no_deadline_always_met) {
    const auto m = compute_qos({rec("RS.", 500, never, 100)}, 1);
    EXPECT_DOUBLE_EQ(m.sla_rate, 1.0);
}

TEST(qos, stp_is_mean_normalized_progress_times_slots) {
    // NP = isolated / latency: 0.5 and 1.0 -> mean 0.75; 8 slots -> 6.0.
    std::vector<qos_record> records{
        rec("RS.", 200, never, 100),  // NP 0.5
        rec("MB.", 100, never, 100),  // NP 1.0
    };
    const auto m = compute_qos(records, 8);
    EXPECT_DOUBLE_EQ(m.stp, 0.75 * 8);
}

TEST(qos, per_model_np_averages_before_stp) {
    // Two RS. completions with NP 0.4 and 0.6 average to 0.5 — the model
    // is not double-counted against MB.'s single completion.
    std::vector<qos_record> records{
        rec("RS.", 250, never, 100),
        rec("RS.", 167, never, 100),
        rec("MB.", 100, never, 100),
    };
    const auto m = compute_qos(records, 2);
    EXPECT_NEAR(m.stp, (0.5 + 1.0) / 2.0 * 2.0, 0.01);
}

TEST(qos, fairness_is_min_over_max_progress) {
    std::vector<qos_record> records{
        rec("RS.", 200, never, 100),  // NP 0.5
        rec("MB.", 125, never, 100),  // NP 0.8
    };
    const auto m = compute_qos(records, 2);
    EXPECT_DOUBLE_EQ(m.fairness, 0.5 / 0.8);
}

TEST(qos, perfect_equality_gives_fairness_one) {
    std::vector<qos_record> records{
        rec("RS.", 200, never, 100),
        rec("MB.", 400, never, 200),
    };
    const auto m = compute_qos(records, 2);
    EXPECT_DOUBLE_EQ(m.fairness, 1.0);
}

TEST(qos, zero_latency_records_are_tolerated) {
    const auto m = compute_qos({rec("RS.", 0, never, 100)}, 1);
    EXPECT_GE(m.stp, 0.0);
}

// ---- degenerate-input guards: zeroed metrics, never NaN/Inf ----

TEST(qos, empty_records_metrics_are_finite_zero) {
    const auto m = compute_qos({}, 0);
    EXPECT_TRUE(std::isfinite(m.sla_rate));
    EXPECT_TRUE(std::isfinite(m.stp));
    EXPECT_TRUE(std::isfinite(m.fairness));
    EXPECT_DOUBLE_EQ(m.sla_rate, 0.0);
    EXPECT_DOUBLE_EQ(m.stp, 0.0);
    EXPECT_DOUBLE_EQ(m.fairness, 0.0);
}

TEST(qos, zero_isolated_latency_contributes_zero_progress) {
    // An unprofiled isolated reference must not poison STP with 0/x noise
    // or the fairness ratio with spurious zeros — and never emit NaN.
    std::vector<qos_record> records{
        rec("RS.", 100, never, 0),    // degenerate reference
        rec("MB.", 100, never, 100),  // NP 1.0
    };
    const auto m = compute_qos(records, 2);
    EXPECT_TRUE(std::isfinite(m.stp));
    EXPECT_TRUE(std::isfinite(m.fairness));
    EXPECT_DOUBLE_EQ(m.stp, (0.0 + 1.0) / 2.0 * 2.0);
    EXPECT_DOUBLE_EQ(m.fairness, 0.0);  // min NP 0 / max NP 1
}

TEST(qos, all_zero_progress_zeroes_fairness_not_nan) {
    // Every record degenerate -> max NP (the fairness denominator) is 0.
    std::vector<qos_record> records{
        rec("RS.", 0, never, 0),
        rec("MB.", 100, never, 0),
    };
    const auto m = compute_qos(records, 2);
    EXPECT_TRUE(std::isfinite(m.sla_rate));
    EXPECT_TRUE(std::isfinite(m.stp));
    EXPECT_TRUE(std::isfinite(m.fairness));
    EXPECT_DOUBLE_EQ(m.stp, 0.0);
    EXPECT_DOUBLE_EQ(m.fairness, 0.0);
}

TEST(qos, zero_latency_and_zero_isolated_together) {
    const auto m = compute_qos({rec("RS.", 0, 100, 0)}, 4);
    EXPECT_TRUE(std::isfinite(m.stp));
    EXPECT_DOUBLE_EQ(m.stp, 0.0);
    EXPECT_DOUBLE_EQ(m.fairness, 0.0);
    EXPECT_DOUBLE_EQ(m.sla_rate, 1.0);  // latency 0 meets any deadline
}

TEST(qos, zero_co_located_scales_stp_to_zero_without_nan) {
    const auto m = compute_qos({rec("RS.", 100, never, 100)}, 0);
    EXPECT_TRUE(std::isfinite(m.stp));
    EXPECT_DOUBLE_EQ(m.stp, 0.0);
}

TEST(qos, better_system_dominates_on_all_metrics) {
    // Construct "slow" and "fast" runs of the same workload; the fast one
    // must not lose on any metric — a sanity property the Fig 9 bench
    // relies on when comparing policies.
    std::vector<qos_record> slow{
        rec("RS.", 400, 300, 100), rec("MB.", 300, 250, 100)};
    std::vector<qos_record> fast{
        rec("RS.", 200, 300, 100), rec("MB.", 150, 250, 100)};
    const auto ms = compute_qos(slow, 2);
    const auto mf = compute_qos(fast, 2);
    EXPECT_GE(mf.sla_rate, ms.sla_rate);
    EXPECT_GE(mf.stp, ms.stp);
    EXPECT_GE(mf.fairness, ms.fairness);
}

}  // namespace
}  // namespace camdn::runtime

// Line-by-line tests of Algorithm 1 (dynamic cache allocation): the
// predAvailPages arithmetic, the LBM gates, largest-fit LWM selection and
// the timeout downgrade path.
#include <gtest/gtest.h>

#include "cache/page_allocator.h"
#include "mapping/layer_mapper.h"
#include "model/model.h"
#include "runtime/cache_allocation.h"

namespace camdn::runtime {
namespace {

/// A synthetic 4-layer model whose layers have pinnable tensors and whose
/// first three layers form one LBM block.
struct scenario {
    model::model mdl;
    mapping::model_mapping mapping;
    cache::cache_config cache_cfg{};
    cache::page_allocator pool{cache::cache_config{}};

    scenario() {
        model::model_builder b("synthetic", "SY.", model::model_domain::vision,
                               "Conv", 10.0, 1, 1, 1);
        b.gemm("g0", 512, 1024, 1024);
        b.gemm("g1", 512, 1024, 1024);
        b.gemm("g2", 512, 1024, 1024);
        b.gemm("g3", 512, 20000, 1024);
        mdl = std::move(b).build();

        mapping::mapper_config cfg;
        mapping = mapping::map_model(mdl, cfg);
    }

    task make_task(task_id id, std::uint32_t layer = 0) {
        task t;
        t.id = id;
        t.mdl = &mdl;
        t.mapping = &mapping;
        t.current_layer = layer;
        return t;
    }
};

TEST(pred_avail_pages, counts_idle_plus_expected_releases) {
    scenario s;
    cache_allocation_algorithm alg;
    task current = s.make_task(0);

    task other = s.make_task(1);
    other.p_alloc = 50;
    other.p_next = 10;
    other.t_next = 100;  // will reallocate before the horizon

    // Enough co-runners that the fairness floor (total/n) sits below the
    // arithmetic under test.
    std::vector<task> fillers;
    for (int i = 2; i < 10; ++i) {
        fillers.push_back(s.make_task(i));
        fillers.back().t_next = never;  // contribute nothing
    }
    std::vector<const task*> running{&current, &other};
    for (auto& f : fillers) running.push_back(&f);

    // Drain the pool so idle is a known quantity.
    s.pool.try_allocate(9, s.pool.total_pages() - 20);

    const auto ahead =
        alg.predict_available_pages(running, current, s.pool, /*t_ahead=*/200);
    EXPECT_EQ(ahead, 20 + (50 - 10));
}

TEST(pred_avail_pages, ignores_tasks_reallocating_after_horizon) {
    scenario s;
    cache_allocation_algorithm alg;
    task current = s.make_task(0);
    task other = s.make_task(1);
    other.p_alloc = 50;
    other.p_next = 10;
    other.t_next = 500;  // beyond the horizon

    s.pool.try_allocate(9, s.pool.total_pages() - 20);
    std::vector<const task*> running{&current, &other};
    const auto ahead =
        alg.predict_available_pages(running, current, s.pool, 200);
    // Fairness floor: total/2 tasks = 192 exceeds the raw 20 idle pages.
    EXPECT_EQ(ahead, static_cast<std::int64_t>(s.pool.total_pages() / 2));
}

TEST(pred_avail_pages, excludes_the_current_task) {
    scenario s;
    cache_allocation_algorithm alg;
    task current = s.make_task(0);
    current.p_alloc = 100;
    current.p_next = 0;
    current.t_next = 0;  // would count if not excluded
    std::vector<const task*> running{&current};
    const auto ahead =
        alg.predict_available_pages(running, current, s.pool, 1000);
    EXPECT_EQ(ahead, static_cast<std::int64_t>(s.pool.total_pages()));
}

TEST(pred_avail_pages, negative_deltas_reduce_the_estimate) {
    scenario s;
    cache_allocation_algorithm alg;
    task current = s.make_task(0);
    task growing = s.make_task(1);
    growing.p_alloc = 0;
    growing.p_next = 150;  // will take pages at its next reallocation
    growing.t_next = 0;
    s.pool.try_allocate(9, s.pool.total_pages() - 200);
    std::vector<const task*> running{&current, &growing};
    const auto ahead =
        alg.predict_available_pages(running, current, s.pool, 1000);
    EXPECT_EQ(ahead, std::max<std::int64_t>(
                         200 - 150,
                         static_cast<std::int64_t>(s.pool.total_pages() / 2)));
}

TEST(algorithm1, lbm_already_enabled_returns_infinite_timeout) {
    scenario s;
    cache_allocation_algorithm alg;
    task t = s.make_task(0, /*layer=*/1);
    ASSERT_TRUE(s.mapping.tables[1].lbm.has_value());
    t.lbm_enabled = true;
    t.lbm_block = s.mapping.block_of[1];

    const auto d = alg.select(t, {&t}, s.pool, 1000);
    ASSERT_NE(d.candidate, nullptr);
    EXPECT_TRUE(d.candidate->is_lbm);
    EXPECT_EQ(d.timeout, never);
}

TEST(algorithm1, block_head_enables_lbm_when_pages_will_be_available) {
    scenario s;
    cache_allocation_algorithm alg;
    task t = s.make_task(0, /*layer=*/0);
    ASSERT_TRUE(s.mapping.is_block_head(0));
    // Pool is fully idle: prediction comfortably covers the block.
    const auto d = alg.select(t, {&t}, s.pool, 0);
    ASSERT_NE(d.candidate, nullptr);
    EXPECT_TRUE(d.candidate->is_lbm);
    EXPECT_NE(d.timeout, never);
    EXPECT_GT(d.timeout, 0u);
}

TEST(algorithm1, lbm_denied_when_prediction_is_too_small) {
    scenario s;
    cache_allocation_algorithm alg;
    task t = s.make_task(0, 0);
    // Soak the pool with co-runners that won't release anything soon and
    // keep many tasks running so the fairness floor is small.
    s.pool.try_allocate(9, s.pool.total_pages());
    std::vector<task> others;
    for (int i = 1; i <= 16; ++i) {
        others.push_back(s.make_task(i));
        others.back().t_next = never;  // no release within any horizon
    }
    std::vector<const task*> running{&t};
    for (auto& o : others) running.push_back(&o);

    const auto d = alg.select(t, running, s.pool, 0);
    ASSERT_NE(d.candidate, nullptr);
    const auto block_pages = s.mapping.tables[0].lbm->pages_needed;
    if (block_pages > s.pool.total_pages() / running.size()) {
        EXPECT_FALSE(d.candidate->is_lbm);
    }
}

TEST(algorithm1, lwm_selection_takes_largest_fitting_candidate) {
    scenario s;
    cache_allocation_algorithm alg;
    task t = s.make_task(0, /*layer=*/3);  // singleton block, no LBM
    ASSERT_FALSE(s.mapping.tables[3].lbm.has_value());

    const auto d = alg.select(t, {&t}, s.pool, 0);
    ASSERT_NE(d.candidate, nullptr);
    EXPECT_FALSE(d.candidate->is_lbm);
    // With the whole pool idle, the largest LWM candidate that fits the
    // pool must be chosen.
    const auto& lwm = s.mapping.tables[3].lwm;
    const mapping::mapping_candidate* expected = &lwm.front();
    for (const auto& c : lwm)
        if (c.pages_needed <= s.pool.total_pages() &&
            c.pages_needed > expected->pages_needed)
            expected = &c;
    EXPECT_EQ(d.candidate, expected);
    EXPECT_EQ(d.pages_needed, expected->pages_needed);
}

TEST(algorithm1, allow_lbm_false_never_returns_lbm) {
    scenario s;
    cache_allocation_algorithm alg;
    task t = s.make_task(0, 0);
    const auto d = alg.select(t, {&t}, s.pool, 0, /*allow_lbm=*/false);
    ASSERT_NE(d.candidate, nullptr);
    EXPECT_FALSE(d.candidate->is_lbm);
}

TEST(algorithm1, downgrade_steps_strictly_down_to_zero) {
    scenario s;
    cache_allocation_algorithm alg;
    task t = s.make_task(0, 3);
    const auto& lwm = s.mapping.tables[3].lwm;
    ASSERT_GE(lwm.size(), 2u);

    std::uint32_t cap = lwm.back().pages_needed;
    // Repeated timeouts walk the ladder down and terminate at zero pages.
    for (int guard = 0; guard < 64; ++guard) {
        const auto d = alg.downgrade(t, cap, 0);
        ASSERT_NE(d.candidate, nullptr);
        EXPECT_LT(d.candidate->pages_needed, std::max(cap, 1u));
        if (d.candidate->pages_needed == 0) return;  // reached the floor
        cap = d.candidate->pages_needed;
    }
    FAIL() << "downgrade did not converge";
}

TEST(algorithm1, timeout_scales_with_layer_estimate) {
    scenario s;
    cache_allocation_algorithm alg(0.2);
    task t = s.make_task(0, 3);
    const auto d = alg.select(t, {&t}, s.pool, /*now=*/1'000'000);
    const cycle_t expected =
        1'000'000 +
        static_cast<cycle_t>(0.2 * static_cast<double>(s.mapping.layer_est[3]));
    EXPECT_EQ(d.timeout, expected);
}

}  // namespace
}  // namespace camdn::runtime

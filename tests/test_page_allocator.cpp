// Unit tests for the NPU-subspace page allocator: pool bounds, atomicity,
// LIFO release and accounting invariants under randomized operations.
#include <gtest/gtest.h>

#include <set>

#include "cache/page_allocator.h"
#include "common/rng.h"

namespace camdn::cache {
namespace {

TEST(page_allocator, pool_is_the_npu_subspace) {
    cache_config cfg;  // Table II: 12/16 ways of 512 pages
    page_allocator pool(cfg);
    EXPECT_EQ(pool.total_pages(), 384u);
    EXPECT_EQ(pool.idle_pages(), 384u);
}

TEST(page_allocator, handed_out_pages_live_in_npu_ways) {
    cache_config cfg;
    page_allocator pool(cfg);
    const std::uint32_t first_npu_pcpn = cfg.cpu_ways() * cfg.pages_per_way();
    auto pages = pool.try_allocate(0, pool.total_pages());
    ASSERT_TRUE(pages.has_value());
    for (auto pcpn : *pages) {
        EXPECT_GE(pcpn, first_npu_pcpn);
        EXPECT_LT(pcpn, cfg.pages_total());
    }
}

TEST(page_allocator, allocation_is_all_or_nothing) {
    cache_config cfg;
    page_allocator pool(cfg);
    ASSERT_TRUE(pool.try_allocate(1, 380).has_value());
    EXPECT_FALSE(pool.try_allocate(2, 5).has_value());
    // The failed request must not have consumed anything.
    EXPECT_EQ(pool.idle_pages(), 4u);
    EXPECT_EQ(pool.allocated(2), 0u);
}

TEST(page_allocator, zero_page_request_succeeds_trivially) {
    page_allocator pool{cache_config{}};
    auto got = pool.try_allocate(0, 0);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->empty());
}

TEST(page_allocator, release_returns_most_recent_pages) {
    page_allocator pool{cache_config{}};
    auto first = pool.try_allocate(0, 2).value();
    auto second = pool.try_allocate(0, 2).value();
    const auto freed = pool.release(0, 2);
    ASSERT_EQ(freed.size(), 2u);
    // LIFO: the second allocation's pages come back first.
    EXPECT_EQ(freed[0], second[1]);
    EXPECT_EQ(freed[1], second[0]);
    EXPECT_EQ(pool.allocated(0), 2u);
    EXPECT_EQ(pool.pages_of(0), first);
}

TEST(page_allocator, release_clamps_to_holdings) {
    page_allocator pool{cache_config{}};
    pool.try_allocate(3, 4);
    const auto freed = pool.release(3, 100);
    EXPECT_EQ(freed.size(), 4u);
    EXPECT_EQ(pool.allocated(3), 0u);
}

TEST(page_allocator, release_all) {
    page_allocator pool{cache_config{}};
    pool.try_allocate(1, 10);
    pool.try_allocate(2, 20);
    pool.release_all(1);
    EXPECT_EQ(pool.allocated(1), 0u);
    EXPECT_EQ(pool.allocated(2), 20u);
    EXPECT_EQ(pool.idle_pages(), pool.total_pages() - 20u);
}

TEST(page_allocator, release_of_unknown_task_is_empty) {
    page_allocator pool{cache_config{}};
    EXPECT_TRUE(pool.release(42, 5).empty());
}

TEST(page_allocator, no_double_handout) {
    page_allocator pool{cache_config{}};
    auto a = pool.try_allocate(1, 100).value();
    auto b = pool.try_allocate(2, 100).value();
    std::set<std::uint32_t> seen(a.begin(), a.end());
    for (auto p : b) EXPECT_TRUE(seen.insert(p).second);
}

TEST(page_allocator, accounting_invariant_under_random_ops) {
    cache_config cfg;
    page_allocator pool(cfg);
    rng r(2024);
    for (int step = 0; step < 2'000; ++step) {
        const task_id task = static_cast<task_id>(r.next_below(8));
        if (r.next_below(2) == 0) {
            pool.try_allocate(task, static_cast<std::uint32_t>(r.next_below(40)));
        } else {
            pool.release(task, static_cast<std::uint32_t>(r.next_below(40)));
        }
        ASSERT_TRUE(pool.accounting_consistent());
    }
    for (task_id t = 0; t < 8; ++t) pool.release_all(t);
    EXPECT_EQ(pool.idle_pages(), pool.total_pages());
}

// Parameterized over cache geometry: the allocatable pool always equals
// npu_ways / ways of the capacity.
class allocator_geometry
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(allocator_geometry, pool_size_tracks_partition) {
    cache_config cfg;
    cfg.total_bytes = std::get<0>(GetParam());
    cfg.npu_ways = std::get<1>(GetParam());
    page_allocator pool(cfg);
    EXPECT_EQ(pool.total_pages(),
              cfg.npu_ways * (cfg.total_bytes / cfg.page_bytes) / cfg.ways);
}

INSTANTIATE_TEST_SUITE_P(
    geometries, allocator_geometry,
    ::testing::Combine(::testing::Values(mib(4), mib(16), mib(64)),
                       ::testing::Values(4u, 8u, 12u, 16u)));

}  // namespace
}  // namespace camdn::cache

// Tests for the Fig 3 reuse analysis: bucket accounting, refetch factors
// and the paper's qualitative claims about DNN data reuse.
#include <gtest/gtest.h>

#include "model/model_zoo.h"
#include "model/reuse_analysis.h"

namespace camdn::model {
namespace {

layer make_gemm(std::uint64_t m, std::uint64_t n, std::uint64_t k) {
    layer l;
    l.kind = layer_kind::gemm;
    l.m = m;
    l.n = n;
    l.k = k;
    l.input_bytes = m * k;
    l.weight_bytes = n * k;
    l.output_bytes = m * n;
    return l;
}

TEST(refetch, elementwise_and_pool_are_single_pass) {
    layer l;
    l.kind = layer_kind::elementwise;
    l.m = 1'000'000;
    const auto [wp, ip] = baseline_refetch_factors(l, kib(128));
    EXPECT_EQ(wp, 1u);
    EXPECT_EQ(ip, 1u);
}

TEST(refetch, dwconv_streams_once) {
    layer l;
    l.kind = layer_kind::dwconv;
    l.m = 112 * 112;
    l.n = 96;
    l.k = 9;
    const auto [wp, ip] = baseline_refetch_factors(l, kib(128));
    EXPECT_EQ(wp, 1u);
    EXPECT_EQ(ip, 1u);
}

TEST(refetch, small_gemm_fits_without_refetch) {
    const layer l = make_gemm(32, 32, 64);
    const auto [wp, ip] = baseline_refetch_factors(l, kib(128));
    EXPECT_EQ(wp, 1u);
    EXPECT_EQ(ip, 1u);
}

TEST(refetch, wide_gemm_refetches_input) {
    // n far exceeds any scratchpad tile: input must be re-read.
    const layer l = make_gemm(256, 32'000, 1024);
    const auto [wp, ip] = baseline_refetch_factors(l, kib(128));
    EXPECT_GT(ip * wp, 1u);
}

TEST(refetch, bigger_scratchpad_never_increases_traffic) {
    const layer l = make_gemm(4096, 4096, 1024);
    std::uint64_t prev = UINT64_MAX;
    for (std::uint64_t budget : {kib(32), kib(64), kib(128), kib(256), kib(512)}) {
        const auto [wp, ip] = baseline_refetch_factors(l, budget);
        const std::uint64_t traffic = l.weight_bytes * wp + l.input_bytes * ip;
        EXPECT_LE(traffic, prev) << "budget " << budget;
        prev = traffic;
    }
}

TEST(reuse_report, fractions_sum_to_one) {
    const auto rep = analyze_reuse(model_by_abbr("RS."));
    double count_total = 0.0, dist_total = 0.0;
    for (std::size_t i = 0; i < rep.count_hist.bucket_count(); ++i)
        count_total += rep.count_hist.fraction(i);
    for (std::size_t i = 0; i < rep.distance_hist.bucket_count(); ++i)
        dist_total += rep.distance_hist.fraction(i);
    EXPECT_NEAR(count_total, 1.0, 1e-9);
    EXPECT_NEAR(dist_total, 1.0, 1e-9);
}

TEST(reuse_report, weights_dominated_models_are_mostly_single_use) {
    // ViT/BERT stream tens of MB of parameters exactly once.
    for (const char* abbr : {"VT.", "BE.", "GN."}) {
        const auto rep = analyze_reuse(model_by_abbr(abbr));
        EXPECT_GT(rep.single_use_fraction(), 0.4) << abbr;
    }
}

TEST(reuse_report, average_single_use_matches_paper_magnitude) {
    // Paper §II-C: on average 68.0% of data has no future reuse.
    double sum = 0.0;
    for (const auto& m : benchmark_models())
        sum += analyze_reuse(m).single_use_fraction();
    const double avg = sum / 8.0;
    EXPECT_GT(avg, 0.45);
    EXPECT_LT(avg, 0.85);
}

TEST(reuse_report, intermediates_have_long_reuse_distances) {
    // Paper §II-C: 61.8% of intermediate data has reuse distance > 1 MiB.
    double sum = 0.0;
    for (const auto& m : benchmark_models())
        sum += analyze_reuse(m).long_distance_fraction();
    const double avg = sum / 8.0;
    EXPECT_GT(avg, 0.45);
}

TEST(reuse_report, distance_buckets_follow_layer_traffic) {
    // A model made of large layers produces long distances.
    model big;
    big.name = "big";
    for (int i = 0; i < 4; ++i) {
        layer l = make_gemm(2048, 2048, 2048);
        l.name = "g" + std::to_string(i);
        big.layers.push_back(l);
    }
    const auto rep = analyze_reuse(big);
    EXPECT_GT(rep.long_distance_fraction(), 0.9);

    model small;
    small.name = "small";
    for (int i = 0; i < 4; ++i) {
        layer l = make_gemm(64, 64, 64);
        l.name = "s" + std::to_string(i);
        small.layers.push_back(l);
    }
    const auto rep2 = analyze_reuse(small);
    EXPECT_LT(rep2.long_distance_fraction(), 0.1);
}

TEST(reuse_report, residuals_add_accesses_and_distance) {
    model chain;
    chain.name = "chain";
    for (int i = 0; i < 3; ++i) chain.layers.push_back(make_gemm(512, 512, 512));
    model with_res = chain;
    with_res.layers[2].residual_from = 0;
    const auto plain = analyze_reuse(chain);
    const auto res = analyze_reuse(with_res);
    // The residual edge adds one more access to layer 0's output, moving
    // weight out of the lowest count bucket.
    EXPECT_LE(res.count_hist.fraction(0), plain.count_hist.fraction(0));
}

// Per-model sanity: every model yields a meaningful, non-degenerate report.
class reuse_all_models : public ::testing::TestWithParam<std::string> {};

TEST_P(reuse_all_models, report_is_non_degenerate) {
    const auto rep = analyze_reuse(model_by_abbr(GetParam()));
    EXPECT_GT(rep.count_hist.total_weight(), 0.0);
    EXPECT_GT(rep.distance_hist.total_weight(), 0.0);
    EXPECT_GE(rep.single_use_fraction(), 0.0);
    EXPECT_LE(rep.single_use_fraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(all_models, reuse_all_models,
                         ::testing::Values("RS.", "MB.", "EF.", "VT.", "BE.",
                                           "GN.", "WV.", "PP."));

}  // namespace
}  // namespace camdn::model

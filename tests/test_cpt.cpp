// Unit tests for the Cache Page Table: mapping, translation bit-fields and
// the paper's §III-B3 properties (slice striping, 512-entry bound, 1.5 KiB
// SRAM footprint).
#include <gtest/gtest.h>

#include <set>

#include "cache/cpt.h"

namespace camdn::cache {
namespace {

TEST(cpt, table2_capacity_matches_paper) {
    cache_config cfg;  // 16 MiB / 32 KiB pages
    cache_page_table cpt(cfg);
    EXPECT_EQ(cpt.capacity(), 512u);
    // "at most 3 bytes per entry ... 1.5KB SRAM overhead"
    EXPECT_EQ(cpt.sram_bytes(), 1536u);
}

TEST(cpt, map_lookup_unmap) {
    cache_page_table cpt{cache_config{}};
    EXPECT_FALSE(cpt.is_mapped(3));
    cpt.map(3, 200);
    ASSERT_TRUE(cpt.is_mapped(3));
    EXPECT_EQ(cpt.lookup(3).value(), 200u);
    EXPECT_EQ(cpt.mapped_count(), 1u);
    cpt.unmap(3);
    EXPECT_FALSE(cpt.is_mapped(3));
    EXPECT_EQ(cpt.mapped_count(), 0u);
}

TEST(cpt, remap_overwrites_without_leaking_count) {
    cache_page_table cpt{cache_config{}};
    cpt.map(1, 100);
    cpt.map(1, 101);
    EXPECT_EQ(cpt.mapped_count(), 1u);
    EXPECT_EQ(cpt.lookup(1).value(), 101u);
}

TEST(cpt, unmap_is_idempotent) {
    cache_page_table cpt{cache_config{}};
    cpt.map(2, 50);
    cpt.unmap(2);
    cpt.unmap(2);
    EXPECT_EQ(cpt.mapped_count(), 0u);
}

TEST(cpt, clear_removes_everything) {
    cache_page_table cpt{cache_config{}};
    for (std::uint32_t v = 0; v < 16; ++v) cpt.map(v, v + 100);
    cpt.clear();
    EXPECT_EQ(cpt.mapped_count(), 0u);
    for (std::uint32_t v = 0; v < 16; ++v) EXPECT_FALSE(cpt.is_mapped(v));
}

TEST(cpt, consecutive_lines_stripe_across_slices) {
    cache_config cfg;
    cache_page_table cpt(cfg);
    cpt.map(0, 480);  // some NPU-subspace page
    for (std::uint32_t i = 0; i < cfg.slices * 2; ++i) {
        const pcaddr p = cpt.translate(i * line_bytes);
        EXPECT_EQ(p.slice, i % cfg.slices);  // paper Fig 5(b)
    }
}

TEST(cpt, set_advances_after_one_round_of_slices) {
    cache_config cfg;
    cache_page_table cpt(cfg);
    cpt.map(0, 480);
    const pcaddr first = cpt.translate(0);
    const pcaddr next_round = cpt.translate(cfg.slices * line_bytes);
    EXPECT_EQ(next_round.set, first.set + 1);
    EXPECT_EQ(next_round.way, first.way);
}

TEST(cpt, way_and_set_band_derive_from_pcpn) {
    cache_config cfg;
    cache_page_table cpt(cfg);
    const std::uint32_t pcpn = 480;  // way 15, band 0 under Table II
    cpt.map(0, pcpn);
    const pcaddr p = cpt.translate(0);
    EXPECT_EQ(p.way, pcpn / cfg.pages_per_way());
    EXPECT_EQ(p.set, (pcpn % cfg.pages_per_way()) * cfg.sets_per_page());
}

TEST(cpt, translation_is_injective_across_the_whole_subspace) {
    cache_config cfg;
    cache_page_table cpt(cfg);
    // Map every page identity-style and check that all (way,set,slice)
    // triples of page-first lines are distinct.
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
    for (std::uint32_t p = 0; p < cfg.pages_total(); ++p) {
        cpt.map(p, p);
        const pcaddr a = cpt.translate(static_cast<addr_t>(p) * cfg.page_bytes);
        EXPECT_TRUE(seen.insert({a.way, a.set, a.slice}).second)
            << "duplicate location for page " << p;
    }
}

TEST(cpt, different_vcpns_may_share_one_pcpn_view) {
    // Paging is a translation, not an allocator: two models' CPTs can map
    // the same vcpn to different pcpns (isolation) — modelled here by one
    // table remapping.
    cache_page_table a{cache_config{}};
    cache_page_table b{cache_config{}};
    a.map(0, 448);
    b.map(0, 449);
    EXPECT_NE(a.translate(0).set, b.translate(0).set);
}

// Parameterized: geometry invariants across page sizes (ablation sweep).
class cpt_page_size : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(cpt_page_size, geometry_is_consistent) {
    cache_config cfg;
    cfg.page_bytes = GetParam();
    EXPECT_EQ(cfg.pages_total() * cfg.page_bytes, cfg.total_bytes);
    EXPECT_EQ(cfg.npu_pages(), cfg.npu_ways * cfg.pages_per_way());
    EXPECT_EQ(cfg.sets_per_page() * cfg.slices * line_bytes, cfg.page_bytes);

    cache_page_table cpt(cfg);
    cpt.map(0, cfg.pages_total() - 1);
    const pcaddr last = cpt.translate(cfg.page_bytes - line_bytes);
    EXPECT_LT(last.way, cfg.ways);
    EXPECT_LT(last.set, cfg.sets_per_slice());
    EXPECT_LT(last.slice, cfg.slices);
}

INSTANTIATE_TEST_SUITE_P(page_sizes, cpt_page_size,
                         ::testing::Values(kib(8), kib(16), kib(32), kib(64),
                                           kib(128)));

}  // namespace
}  // namespace camdn::cache

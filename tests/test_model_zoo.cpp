// Tests for the benchmark model zoo: Table I membership, realistic
// compute/parameter scales, and structural invariants of the layer IR.
#include <gtest/gtest.h>

#include "model/model_zoo.h"
#include "npu/compute_model.h"

namespace camdn::model {
namespace {

TEST(model_zoo, contains_the_eight_table1_models_in_order) {
    const auto& models = benchmark_models();
    ASSERT_EQ(models.size(), 8u);
    const char* abbrs[] = {"RS.", "MB.", "EF.", "VT.",
                           "BE.", "GN.", "WV.", "PP."};
    for (int i = 0; i < 8; ++i) EXPECT_EQ(models[i].abbr, abbrs[i]);
}

TEST(model_zoo, lookup_by_abbreviation) {
    EXPECT_EQ(model_by_abbr("RS.").name, "ResNet50");
    EXPECT_EQ(model_by_abbr("PP.").name, "PointPillars");
    EXPECT_THROW(model_by_abbr("XX."), std::out_of_range);
}

TEST(model_zoo, table1_qos_targets) {
    EXPECT_DOUBLE_EQ(model_by_abbr("RS.").qos_ms, 6.7);
    EXPECT_DOUBLE_EQ(model_by_abbr("MB.").qos_ms, 2.8);
    EXPECT_DOUBLE_EQ(model_by_abbr("EF.").qos_ms, 2.8);
    EXPECT_DOUBLE_EQ(model_by_abbr("VT.").qos_ms, 40.0);
    EXPECT_DOUBLE_EQ(model_by_abbr("BE.").qos_ms, 40.0);
    EXPECT_DOUBLE_EQ(model_by_abbr("GN.").qos_ms, 6.7);
    EXPECT_DOUBLE_EQ(model_by_abbr("WV.").qos_ms, 16.7);
    EXPECT_DOUBLE_EQ(model_by_abbr("PP.").qos_ms, 100.0);
}

TEST(model_zoo, table1_model_types) {
    EXPECT_EQ(model_by_abbr("RS.").type, "Conv");
    EXPECT_EQ(model_by_abbr("MB.").type, "DwConv");
    EXPECT_EQ(model_by_abbr("VT.").type, "Trans");
    EXPECT_EQ(model_by_abbr("GN.").type, "LSTM");
}

// Published MAC counts (multiply-accumulate, fvcore convention) at the
// paper's input shapes, with tolerance for the documented simplifications.
TEST(model_zoo, resnet50_macs_near_published) {
    const double g = model_by_abbr("RS.").total_macs() / 1e9;
    EXPECT_GT(g, 3.2);  // 4.1 G minus folded downsample convs
    EXPECT_LT(g, 4.5);
}

TEST(model_zoo, mobilenet_v2_macs_near_published) {
    const double g = model_by_abbr("MB.").total_macs() / 1e9;
    EXPECT_GT(g, 0.25);  // published 0.32 G
    EXPECT_LT(g, 0.40);
}

TEST(model_zoo, efficientnet_b0_macs_near_published) {
    const double g = model_by_abbr("EF.").total_macs() / 1e9;
    EXPECT_GT(g, 0.30);  // published 0.39 G
    EXPECT_LT(g, 0.50);
}

TEST(model_zoo, vit_base_macs_near_published) {
    const double g = model_by_abbr("VT.").total_macs() / 1e9;
    EXPECT_GT(g, 15.5);  // params x tokens ~ 17 G
    EXPECT_LT(g, 19.5);
}

TEST(model_zoo, weight_footprints_near_published_int8) {
    EXPECT_NEAR(model_by_abbr("RS.").total_weight_bytes() / 1e6, 23.0, 4.0);
    EXPECT_NEAR(model_by_abbr("MB.").total_weight_bytes() / 1e6, 3.4, 0.8);
    EXPECT_NEAR(model_by_abbr("VT.").total_weight_bytes() / 1e6, 86.0, 6.0);
    EXPECT_NEAR(model_by_abbr("BE.").total_weight_bytes() / 1e6, 86.0, 8.0);
}

TEST(model_zoo, dwconv_models_have_dwconv_layers) {
    for (const char* abbr : {"MB.", "EF."}) {
        const auto& m = model_by_abbr(abbr);
        int dw = 0;
        for (const auto& l : m.layers) dw += l.kind == layer_kind::dwconv;
        EXPECT_GT(dw, 10) << abbr;
    }
}

TEST(model_zoo, transformers_mark_attention_operands_as_intermediate) {
    const auto& m = model_by_abbr("BE.");
    int flagged = 0;
    for (const auto& l : m.layers) flagged += l.weight_is_intermediate;
    EXPECT_EQ(flagged, 24);  // scores + context per encoder block
}

TEST(model_zoo, residual_models_have_residual_edges) {
    for (const char* abbr : {"RS.", "MB.", "VT.", "BE."}) {
        const auto& m = model_by_abbr(abbr);
        int edges = 0;
        for (const auto& l : m.layers) edges += l.residual_from >= 0;
        EXPECT_GT(edges, 5) << abbr;
    }
}

TEST(model_zoo, intermediate_heavy_models_match_motivation) {
    // MobileNet-v2 / EfficientNet-b0 carry more intermediate than weight
    // bytes — the models the paper highlights for LBM gains.
    for (const char* abbr : {"MB.", "EF."}) {
        const auto& m = model_by_abbr(abbr);
        EXPECT_GT(m.total_intermediate_bytes(), m.total_weight_bytes()) << abbr;
    }
    // Transformers are the opposite.
    for (const char* abbr : {"VT.", "BE.", "WV."}) {
        const auto& m = model_by_abbr(abbr);
        EXPECT_LT(m.total_intermediate_bytes(), m.total_weight_bytes()) << abbr;
    }
}

TEST(model_builder, conv_shape_arithmetic) {
    model_builder b("t", "T.", model_domain::vision, "Conv", 1.0, 3, 224, 224);
    b.conv("c1", 64, 7, 2);  // same-ish padding: 112x112
    EXPECT_EQ(b.h(), 112u);
    EXPECT_EQ(b.w(), 112u);
    EXPECT_EQ(b.c(), 64u);
    b.pool("p", 3, 2);
    EXPECT_EQ(b.h(), 56u);
    auto m = std::move(b).build();
    EXPECT_EQ(m.layers[0].m, 112u * 112);
    EXPECT_EQ(m.layers[0].k, 3u * 49);
    EXPECT_EQ(m.layers[0].weight_bytes, 64u * 3 * 49);
}

TEST(model_builder, gemm_bytes_follow_dims) {
    model_builder b("t", "T.", model_domain::nlp, "Trans", 1.0, 1, 1, 1);
    b.gemm("g", 128, 768, 3072);
    const model m = std::move(b).build();  // keep alive past the expectations
    const layer& l = m.layers.back();
    EXPECT_EQ(l.input_bytes, 128u * 3072);
    EXPECT_EQ(l.weight_bytes, 768u * 3072);
    EXPECT_EQ(l.output_bytes, 128u * 768);
    EXPECT_EQ(l.macs(), 128ull * 768 * 3072);
}

TEST(model_builder, conv1d_no_padding) {
    model_builder b("t", "T.", model_domain::audio, "Trans", 1.0, 1, 1, 16000);
    b.conv1d("c", 512, 10, 5);
    EXPECT_EQ(b.w(), (16000u - 10) / 5 + 1);
    EXPECT_EQ(b.c(), 512u);
}

// Structural invariants across every model and layer.
class zoo_invariants : public ::testing::TestWithParam<std::string> {};

TEST_P(zoo_invariants, layers_are_well_formed) {
    const auto& m = model_by_abbr(GetParam());
    ASSERT_FALSE(m.layers.empty());
    for (std::size_t i = 0; i < m.layers.size(); ++i) {
        const layer& l = m.layers[i];
        EXPECT_GE(l.m, 1u) << l.name;
        EXPECT_GE(l.n, 1u) << l.name;
        EXPECT_GE(l.k, 1u) << l.name;
        EXPECT_GT(l.output_bytes, 0u) << l.name;
        EXPECT_GT(l.macs(), 0u) << l.name;
        if (l.residual_from >= 0)
            EXPECT_LT(static_cast<std::size_t>(l.residual_from), i) << l.name;
        EXPECT_LE(l.min_traffic_bytes(),
                  l.input_bytes + l.weight_bytes + 2 * l.output_bytes);
    }
}

TEST_P(zoo_invariants, compute_time_fits_qos_budget_in_isolation) {
    // A model's pure compute lower bound on one 32x32 core must sit below
    // its Table I QoS target, or the target would be unreachable.
    const auto& m = model_by_abbr(GetParam());
    npu::npu_config npu;
    double cycles = 0.0;
    for (const auto& l : m.layers) {
        cycles += static_cast<double>(l.macs()) / npu.macs_per_cycle();
    }
    EXPECT_LT(cycles_to_ms(static_cast<cycle_t>(cycles)), m.qos_ms)
        << m.name;
}

INSTANTIATE_TEST_SUITE_P(all_models, zoo_invariants,
                         ::testing::Values("RS.", "MB.", "EF.", "VT.", "BE.",
                                           "GN.", "WV.", "PP."));

}  // namespace
}  // namespace camdn::model

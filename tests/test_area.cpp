// Tests for the 45 nm area model against Table III's relative breakdown.
#include <gtest/gtest.h>

#include "area/area_model.h"

namespace camdn::area {
namespace {

area_breakdown table2_breakdown() {
    return estimate_area(npu::npu_config{}, cache::cache_config{});
}

TEST(area, sram_density_is_size_dependent) {
    // Per-bit cost falls with macro size (periphery amortization).
    const double small = sram_area_um2(8 * 1024) / (8 * 1024);
    const double medium = sram_area_um2(2 * 1024 * 1024) / (2 * 1024 * 1024);
    const double large = sram_area_um2(32ull * 1024 * 1024) / (32.0 * 1024 * 1024);
    EXPECT_GT(small, medium);
    EXPECT_GT(medium, large);
}

TEST(area, npu_breakdown_has_expected_items) {
    const auto b = table2_breakdown();
    EXPECT_GT(b.of(b.npu, "Scratchpad"), 0.0);
    EXPECT_GT(b.of(b.npu, "PE Array"), 0.0);
    EXPECT_GT(b.of(b.npu, "CPT"), 0.0);
    EXPECT_GT(b.of(b.npu, "others"), 0.0);
}

TEST(area, cpt_is_about_one_percent_of_the_npu) {
    // Table III: CPT = 0.9% of total NPU area.
    const auto b = table2_breakdown();
    const double frac = b.of(b.npu, "CPT") / b.npu_total();
    EXPECT_GT(frac, 0.004);
    EXPECT_LT(frac, 0.02);
}

TEST(area, nec_is_well_under_one_percent_of_a_slice) {
    // Table III: NEC = 0.3% of total slice area.
    const auto b = table2_breakdown();
    const double frac = b.of(b.slice, "NEC") / b.slice_total();
    EXPECT_GT(frac, 0.001);
    EXPECT_LT(frac, 0.007);
}

TEST(area, scratchpad_dominates_the_npu) {
    // Table III: scratchpad = 79.7% of the NPU.
    const auto b = table2_breakdown();
    const double frac = b.of(b.npu, "Scratchpad") / b.npu_total();
    EXPECT_GT(frac, 0.70);
    EXPECT_LT(frac, 0.88);
}

TEST(area, data_array_dominates_the_slice) {
    // Table III: data array = 88.7% of the slice.
    const auto b = table2_breakdown();
    const double frac = b.of(b.slice, "Data Array") / b.slice_total();
    EXPECT_GT(frac, 0.82);
    EXPECT_LT(frac, 0.94);
}

TEST(area, absolute_magnitudes_match_table3_order) {
    // Paper: NPU ~7.9 mm^2, slice ~24.7 mm^2 (45 nm).
    const auto b = table2_breakdown();
    EXPECT_NEAR(b.npu_total() / 1e6, 7.9, 2.0);
    EXPECT_NEAR(b.slice_total() / 1e6, 24.7, 5.0);
}

TEST(area, cpt_scales_with_page_count) {
    cache::cache_config small_pages;
    small_pages.page_bytes = kib(8);  // 4x the pages -> larger CPT
    const auto base = table2_breakdown();
    const auto more = estimate_area(npu::npu_config{}, small_pages);
    EXPECT_GT(more.of(more.npu, "CPT"), base.of(base.npu, "CPT"));
}

TEST(area, nec_overhead_per_16mb_cache_stays_negligible) {
    // Total CaMDN additions (16 CPTs + 8 NECs) versus total chip area of
    // 16 NPUs + 8 slices: well under 1%.
    const auto b = table2_breakdown();
    const double additions = 16 * b.of(b.npu, "CPT") + 8 * b.of(b.slice, "NEC");
    const double total = 16 * b.npu_total() + 8 * b.slice_total();
    EXPECT_LT(additions / total, 0.01);
}

}  // namespace
}  // namespace camdn::area

// Tests for the baseline resource allocators: MoCA-style bandwidth
// partitioning and AuRORA-style NPU core allocation.
#include <gtest/gtest.h>

#include "dram/dram_system.h"
#include "mapping/layer_mapper.h"
#include "model/model.h"
#include "runtime/bandwidth_allocator.h"
#include "runtime/npu_allocator.h"

namespace camdn::runtime {
namespace {

struct rig {
    model::model mdl;
    mapping::model_mapping mapping;
    dram::dram_system dram{dram::dram_config{}};

    rig() {
        model::model_builder b("synthetic", "SY.", model::model_domain::vision,
                               "Conv", 5.0, 1, 1, 1);
        b.gemm("g0", 1024, 1024, 1024);
        b.gemm("g1", 1024, 1024, 1024);
        mdl = std::move(b).build();
        mapping = mapping::map_model(mdl, mapping::mapper_config{});
    }

    task make_task(task_id id, cycle_t deadline = never) {
        task t;
        t.id = id;
        t.mdl = &mdl;
        t.mapping = &mapping;
        t.cores = {static_cast<npu_id>(id)};
        t.deadline = deadline;
        return t;
    }
};

TEST(bandwidth_allocator, equal_demand_equal_share) {
    rig r;
    bandwidth_allocator bw(r.dram, /*headroom=*/1.0);
    task a = r.make_task(0);
    task b = r.make_task(1);
    std::vector<task*> running{&a, &b};
    bw.reallocate(running, 0);

    // Equal demand halves the budget: a stream of one task saturates at
    // about half the peak.
    const std::uint64_t lines = 40'000;
    const cycle_t done = r.dram.access_burst(0, lines, false, 0, 0);
    const double achieved =
        static_cast<double>(lines * line_bytes) / static_cast<double>(done);
    EXPECT_LT(achieved, 0.6 * 102.4);
    EXPECT_GT(achieved, 0.35 * 102.4);
}

TEST(bandwidth_allocator, urgent_task_gets_more) {
    rig r;
    bandwidth_allocator bw(r.dram, 1.0);
    task urgent = r.make_task(0, /*deadline=*/1'000);  // nearly due
    task relaxed = r.make_task(1, /*deadline=*/1'000'000'000);
    std::vector<task*> running{&urgent, &relaxed};
    bw.reallocate(running, 0);

    const std::uint64_t lines = 20'000;
    const cycle_t urgent_done = r.dram.access_burst(0, lines, false, 0, 0);
    r.dram.reset_timing();
    const cycle_t relaxed_done =
        r.dram.access_burst(mib(512), lines, false, 0, 1);
    EXPECT_LT(urgent_done, relaxed_done);
}

TEST(bandwidth_allocator, clear_removes_regulation) {
    rig r;
    bandwidth_allocator bw(r.dram, 1.0);
    task a = r.make_task(0);
    task b = r.make_task(1);
    std::vector<task*> running{&a, &b};
    bw.reallocate(running, 0);
    bw.clear();
    r.dram.access_burst(0, 30'000, false, 0, 0);
    EXPECT_EQ(r.dram.stats().throttled, 0u);
}

TEST(bandwidth_allocator, skips_idle_slots) {
    rig r;
    bandwidth_allocator bw(r.dram, 1.0);
    task a = r.make_task(0);
    task idle = r.make_task(1);
    idle.cores.clear();  // not running
    std::vector<task*> running{&a, &idle, nullptr};
    bw.reallocate(running, 0);  // must not crash and not throttle task 1
    r.dram.access_burst(0, 1'000, false, 0, 1);
    EXPECT_EQ(r.dram.stats().throttled, 0u);
}

TEST(npu_allocator, one_core_each_when_tasks_match_cores) {
    rig r;
    npu_allocator alloc(4);
    std::vector<task> tasks;
    for (int i = 0; i < 4; ++i) tasks.push_back(r.make_task(i));
    std::vector<task*> running;
    for (auto& t : tasks) running.push_back(&t);
    const auto counts = alloc.allocate(running, 0);
    for (auto c : counts) EXPECT_EQ(c, 1u);
}

TEST(npu_allocator, total_never_exceeds_pool) {
    rig r;
    npu_allocator alloc(8, /*max per task=*/4);
    std::vector<task> tasks;
    for (int i = 0; i < 3; ++i)
        tasks.push_back(r.make_task(i, /*deadline=*/1));  // extremely needy
    std::vector<task*> running;
    for (auto& t : tasks) running.push_back(&t);
    const auto counts = alloc.allocate(running, 0);
    std::uint32_t used = 0;
    for (auto c : counts) {
        used += c;
        EXPECT_LE(c, 4u);
    }
    EXPECT_LE(used, 8u);
}

TEST(npu_allocator, needy_tasks_get_extra_cores) {
    rig r;
    // Odd pool: after everyone gets a fair spread, the leftover core goes
    // to the neediest task.
    npu_allocator alloc(5);
    task urgent = r.make_task(0, /*deadline=*/1'000);
    task relaxed = r.make_task(1, never);
    std::vector<task*> running{&urgent, &relaxed};
    const auto counts = alloc.allocate(running, 0);
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GE(counts[1], 1u);
}

TEST(npu_allocator, oversubscription_serves_neediest_first) {
    rig r;
    npu_allocator alloc(2);
    task a = r.make_task(0, /*deadline=*/10'000'000);
    task b = r.make_task(1, /*deadline=*/1'000);  // needier
    task c = r.make_task(2, /*deadline=*/5'000'000);
    std::vector<task*> running{&a, &b, &c};
    const auto counts = alloc.allocate(running, 0);
    EXPECT_EQ(counts[1], 1u);  // the neediest always runs
    std::uint32_t used = counts[0] + counts[1] + counts[2];
    EXPECT_EQ(used, 2u);
}

TEST(npu_allocator, null_slots_are_skipped) {
    rig r;
    npu_allocator alloc(4);
    task a = r.make_task(0);
    std::vector<task*> running{nullptr, &a, nullptr};
    const auto counts = alloc.allocate(running, 0);
    EXPECT_EQ(counts[0], 0u);
    EXPECT_GE(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);
}

TEST(npu_allocator, empty_running_set) {
    npu_allocator alloc(4);
    std::vector<task*> running;
    EXPECT_TRUE(alloc.allocate(running, 0).empty());
}

}  // namespace
}  // namespace camdn::runtime

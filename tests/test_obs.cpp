// Tests of the observability layer (src/obs) and its common/stats
// backends:
//   * P² streaming quantiles — accuracy against the exact tracker on
//     uniform / lognormal / adversarial streams (with the error bounds
//     the header promises), small-n exactness, determinism;
//   * quantile_accumulator — backend switch rules, merge semantics,
//     exact() access guard;
//   * trace recorder — Chrome trace JSON validity (mini validator),
//     per-(pid, tid) timestamp ordering, interning, absorb, drop cap;
//   * zero-overhead-off — a run with every observer attached is
//     bit-identical (results AND snapshot bytes) to a bare run;
//   * cluster determinism — trace and JSONL files byte-identical across
//     sweep-pool widths;
//   * metrics registry and profiler basics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "model/model_zoo.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/scheduler.h"
#include "runtime/workload.h"
#include "serve/cluster.h"
#include "sim/experiment.h"

namespace camdn {
namespace {

// ---- mini JSON validator ----------------------------------------------
// Recursive-descent structural check: enough to prove the exported trace
// and registry dumps are well-formed JSON without a third-party parser.

struct json_checker {
    const std::string& s;
    std::size_t i = 0;

    void ws() {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                                s[i] == '\r'))
            ++i;
    }
    bool eat(char c) {
        ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }
    bool string() {
        ws();
        if (i >= s.size() || s[i] != '"') return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size()) return false;
            }
            ++i;
        }
        return eat('"') || (s[i - 1] == '"' && true);
    }
    bool number() {
        ws();
        const std::size_t start = i;
        if (i < s.size() && s[i] == '-') ++i;
        while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                                s[i] == '+' || s[i] == '-'))
            ++i;
        return i > start;
    }
    bool literal(const char* lit) {
        ws();
        const std::size_t n = std::string(lit).size();
        if (s.compare(i, n, lit) == 0) {
            i += n;
            return true;
        }
        return false;
    }
    bool value() {
        ws();
        if (i >= s.size()) return false;
        switch (s[i]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
    bool object() {
        if (!eat('{')) return false;
        if (eat('}')) return true;
        do {
            if (!string() || !eat(':') || !value()) return false;
        } while (eat(','));
        return eat('}');
    }
    bool array() {
        if (!eat('[')) return false;
        if (eat(']')) return true;
        do {
            if (!value()) return false;
        } while (eat(','));
        return eat(']');
    }
};

bool valid_json(const std::string& text) {
    json_checker c{text};
    if (!c.value()) return false;
    c.ws();
    return c.i == text.size();
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---- P² streaming quantiles -------------------------------------------

/// Max |P² - exact| / range over the reporting quantiles.
double worst_rel_err(const p2_quantiles& p2, const percentile_tracker& ex) {
    const double range = ex.max() - ex.min();
    if (range == 0.0) return 0.0;
    double worst = 0.0;
    worst = std::max(worst, std::abs(p2.p50() - ex.p50()) / range);
    worst = std::max(worst, std::abs(p2.p95() - ex.p95()) / range);
    worst = std::max(worst, std::abs(p2.p99() - ex.p99()) / range);
    return worst;
}

TEST(p2, uniform_stream_tracks_exact_quantiles) {
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> u(0.0, 100.0);
    p2_quantiles p2;
    percentile_tracker exact;
    for (int i = 0; i < 20000; ++i) {
        const double v = u(rng);
        p2.add(v);
        exact.add(v);
    }
    // Uniform is the friendly case: everything lands within 1% of range.
    EXPECT_LT(worst_rel_err(p2, exact), 0.01);
    EXPECT_EQ(p2.count(), exact.count());
    EXPECT_DOUBLE_EQ(p2.min(), exact.min());
    EXPECT_DOUBLE_EQ(p2.max(), exact.max());
}

TEST(p2, lognormal_stream_tracks_exact_quantiles) {
    std::mt19937_64 rng(11);
    std::lognormal_distribution<double> ln(0.0, 1.0);
    p2_quantiles p2;
    percentile_tracker exact;
    for (int i = 0; i < 20000; ++i) {
        const double v = ln(rng);
        p2.add(v);
        exact.add(v);
    }
    // Heavy tail stretches the range; 2% of range still bounds the error,
    // and the body quantiles stay within 5% relative.
    EXPECT_LT(worst_rel_err(p2, exact), 0.02);
    EXPECT_LT(std::abs(p2.p50() - exact.p50()) / exact.p50(), 0.05);
    EXPECT_LT(std::abs(p2.p95() - exact.p95()) / exact.p95(), 0.05);
}

TEST(p2, adversarial_sorted_and_alternating_streams_stay_bounded) {
    // Monotone ascending: the worst case for marker-based estimators.
    {
        p2_quantiles p2;
        percentile_tracker exact;
        for (int i = 0; i < 10000; ++i) {
            p2.add(static_cast<double>(i));
            exact.add(static_cast<double>(i));
        }
        EXPECT_LT(worst_rel_err(p2, exact), 0.12);
    }
    // Alternating extremes (bimodal): P²'s genuine worst case — the
    // parabolic marker update assumes a locally smooth density, so the
    // median marker settles between the modes while the exact median sits
    // on one of them. Observed error is 1/3 of range; estimates still
    // never leave [min, max].
    {
        p2_quantiles p2;
        percentile_tracker exact;
        for (int i = 0; i < 10000; ++i) {
            const double v = (i % 2 == 0) ? 1.0 : 1000.0;
            p2.add(v);
            exact.add(v);
        }
        EXPECT_LT(worst_rel_err(p2, exact), 0.4);
        EXPECT_GE(p2.p50(), exact.min());
        EXPECT_LE(p2.p50(), exact.max());
    }
}

TEST(p2, exact_below_five_samples) {
    // The estimator promises nearest-rank exactness until five samples.
    p2_estimator median(0.5);
    EXPECT_EQ(median.value(), 0.0);  // empty
    const double vals[4] = {9.0, 1.0, 5.0, 3.0};
    percentile_tracker exact;
    for (int n = 0; n < 4; ++n) {
        median.add(vals[n]);
        exact.add(vals[n]);
        EXPECT_DOUBLE_EQ(median.value(), exact.quantile(0.5))
            << "after " << n + 1 << " samples";
    }
}

TEST(p2, exact_at_exactly_five_samples) {
    // Regression: at count == 5 the markers are still the raw sorted
    // sample array — the first P² marker adjustment only happens on the
    // sixth add — so value() must fall back to the nearest-rank sample.
    // The old `count_ < 5` guard read the middle marker h_[2] instead,
    // reporting 3 for q=0.95 over {1..5}.
    p2_estimator q95(0.95);
    percentile_tracker exact;
    for (int v = 1; v <= 5; ++v) {
        q95.add(static_cast<double>(v));
        exact.add(static_cast<double>(v));
        EXPECT_DOUBLE_EQ(q95.value(), exact.quantile(0.95))
            << "after " << v << " samples";
    }
    EXPECT_DOUBLE_EQ(q95.value(), 5.0);
}

TEST(p2, nan_samples_are_rejected_and_counted) {
    p2_quantiles q;
    q.add(1.0);
    q.add(std::numeric_limits<double>::quiet_NaN());
    q.add(2.0);
    EXPECT_EQ(q.count(), 2u);
    EXPECT_EQ(q.nan_count(), 1u);
    EXPECT_DOUBLE_EQ(q.min(), 1.0);
    EXPECT_DOUBLE_EQ(q.max(), 2.0);
}

TEST(p2, deterministic_for_identical_streams) {
    std::mt19937_64 rng_a(3), rng_b(3);
    std::lognormal_distribution<double> ln(0.0, 0.5);
    p2_quantiles a, b;
    for (int i = 0; i < 5000; ++i) a.add(ln(rng_a));
    for (int i = 0; i < 5000; ++i) b.add(ln(rng_b));
    EXPECT_EQ(a.p50(), b.p50());
    EXPECT_EQ(a.p95(), b.p95());
    EXPECT_EQ(a.p99(), b.p99());
}

// ---- quantile_accumulator ---------------------------------------------

TEST(quantile_accumulator, exact_mode_matches_percentile_tracker) {
    quantile_accumulator acc;  // exact by default
    percentile_tracker ref;
    std::mt19937_64 rng(5);
    std::uniform_real_distribution<double> u(0.0, 10.0);
    for (int i = 0; i < 500; ++i) {
        const double v = u(rng);
        acc.add(v);
        ref.add(v);
    }
    EXPECT_FALSE(acc.streaming());
    EXPECT_DOUBLE_EQ(acc.p50(), ref.p50());
    EXPECT_DOUBLE_EQ(acc.p95(), ref.p95());
    EXPECT_DOUBLE_EQ(acc.p99(), ref.p99());
    EXPECT_EQ(acc.exact().count(), ref.count());
}

TEST(quantile_accumulator, backend_switch_only_while_empty) {
    quantile_accumulator acc;
    acc.set_streaming(true);   // empty: fine
    acc.set_streaming(false);  // back again: fine
    acc.add(1.0);
    EXPECT_NO_THROW(acc.set_streaming(false));  // no-op switch is allowed
    EXPECT_THROW(acc.set_streaming(true), std::logic_error);
}

TEST(quantile_accumulator, exact_access_throws_in_streaming_mode) {
    quantile_accumulator acc;
    acc.set_streaming(true);
    acc.add(1.0);
    EXPECT_THROW(acc.exact(), std::logic_error);
}

TEST(quantile_accumulator, merge_feeds_streaming_backend_in_sorted_order) {
    // Build the same multiset through two differently-ordered trackers;
    // the streaming merge sorts first, so both accumulators agree exactly.
    percentile_tracker fwd, rev;
    for (int i = 0; i < 100; ++i) fwd.add(static_cast<double>(i));
    for (int i = 99; i >= 0; --i) rev.add(static_cast<double>(i));
    quantile_accumulator a, b;
    a.set_streaming(true);
    b.set_streaming(true);
    a.merge(fwd);
    b.merge(rev);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_EQ(a.p50(), b.p50());
    EXPECT_EQ(a.p95(), b.p95());
    EXPECT_EQ(a.p99(), b.p99());
}

TEST(quantile_accumulator, nan_rejected_by_both_backends) {
    quantile_accumulator exact, streaming;
    streaming.set_streaming(true);
    for (quantile_accumulator* acc : {&exact, &streaming}) {
        acc->add(1.0);
        acc->add(std::numeric_limits<double>::quiet_NaN());
        acc->add(3.0);
        EXPECT_EQ(acc->count(), 2u);
        EXPECT_EQ(acc->nan_count(), 1u);
        EXPECT_DOUBLE_EQ(acc->max(), 3.0);
    }
}

TEST(quantile_accumulator, batched_sorted_merges_track_exact_on_bursty_stream) {
    // Mimic the cluster's per-round fold on a long bursty stream: each
    // round's samples land in a per-SoC percentile_tracker, and the fleet
    // accumulator absorbs them batch by batch (merge sorts each batch
    // before feeding P²). The streamed estimates must stay close to the
    // exact quantiles of the full stream.
    std::mt19937_64 rng(23);
    std::lognormal_distribution<double> calm(0.0, 0.4);
    std::lognormal_distribution<double> burst(1.5, 0.6);
    quantile_accumulator st;
    st.set_streaming(true);
    percentile_tracker exact;
    for (int round = 0; round < 64; ++round) {
        percentile_tracker batch;
        const bool bursty = (round / 4) % 2 == 1;  // MMPP-ish regimes
        for (int i = 0; i < 500; ++i) {
            const double v = bursty ? burst(rng) : calm(rng);
            batch.add(v);
            exact.add(v);
        }
        st.merge(batch);
    }
    EXPECT_EQ(st.count(), exact.count());
    const double range = exact.max() - exact.min();
    EXPECT_LT(std::abs(st.p50() - exact.p50()) / range, 0.05);
    EXPECT_LT(std::abs(st.p95() - exact.p95()) / range, 0.05);
    EXPECT_LT(std::abs(st.p99() - exact.p99()) / range, 0.05);
}

// ---- trace recorder ---------------------------------------------------

TEST(trace, export_is_valid_json_and_per_thread_ordered) {
    obs::trace_recorder rec(2);
    // Record deliberately out of timestamp order across two tids.
    rec.complete("conv1", "layer", 1, 500, 900);
    rec.complete("conv0", "layer", 0, 100, 400);
    rec.complete_arg("weights", "dma", 1, 50, 450, 4096);
    rec.instant("page_timeout", "sched", 0, 50);
    rec.complete("conv2", "layer", 0, 450, 800);

    const auto sorted = obs::sorted_for_export(rec.events());
    ASSERT_EQ(sorted.size(), 5u);
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        const auto& p = sorted[i - 1];
        const auto& e = sorted[i];
        const bool same_lane = p.pid == e.pid && p.tid == e.tid;
        if (same_lane) EXPECT_LE(p.ts, e.ts) << "event " << i;
    }

    std::ostringstream out;
    obs::write_chrome_trace(out, rec.events(), {{2u, "test soc"}});
    const std::string text = out.str();
    EXPECT_TRUE(valid_json(text)) << text.substr(0, 200);
    // All five events plus metadata made it out.
    EXPECT_NE(text.find("\"conv1\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("test soc"), std::string::npos);
    // 1 GHz clock: 500 cycles -> 0.5 us.
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
}

TEST(trace, intern_returns_stable_pointers_and_absorb_reinterns) {
    obs::trace_recorder rec(0);
    const char* a = rec.intern(std::string("RS."));
    const char* b = rec.intern(std::string("RS."));
    EXPECT_EQ(a, b);  // same string, same pointer
    rec.complete_arg(a, "inference", 3, 0, 100, 1);

    obs::trace_recorder master(7);
    master.absorb(rec);
    ASSERT_EQ(master.size(), 1u);
    // Events keep their recording pid (per-SoC lanes survive the fold)...
    EXPECT_EQ(master.events()[0].pid, 0u);
    // ...and the name was re-interned into the master's storage.
    EXPECT_STREQ(master.events()[0].name, "RS.");
    EXPECT_NE(master.events()[0].name, a);
}

TEST(trace, event_cap_counts_drops_instead_of_growing) {
    obs::trace_recorder rec(0, 3);
    for (int i = 0; i < 10; ++i)
        rec.complete("e", "cat", 0, i, i + 1);
    EXPECT_EQ(rec.size(), 3u);
    EXPECT_EQ(rec.dropped(), 7u);
}

// ---- metrics registry -------------------------------------------------

TEST(metrics, registry_roundtrip_and_deterministic_json) {
    obs::metrics_registry m;
    m.add("sched.completions");
    m.add("sched.completions", 4);
    m.set("eq.events_executed", 1234);
    m.gauge_set("sim.idle_pages", 17.0);
    for (int i = 1; i <= 100; ++i)
        m.histogram("sched.latency_ms").add(static_cast<double>(i));

    EXPECT_EQ(m.counter("sched.completions"), 5u);
    EXPECT_EQ(m.counter("eq.events_executed"), 1234u);
    EXPECT_EQ(m.counter("missing"), 0u);
    EXPECT_DOUBLE_EQ(m.gauge("sim.idle_pages"), 17.0);
    ASSERT_NE(m.find_histogram("sched.latency_ms"), nullptr);
    EXPECT_EQ(m.find_histogram("sched.latency_ms")->count(), 100u);
    EXPECT_EQ(m.find_histogram("missing"), nullptr);

    std::ostringstream a, b;
    m.write_json(a);
    m.write_json(b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_TRUE(valid_json(a.str())) << a.str().substr(0, 200);
}

// ---- jsonl sink -------------------------------------------------------

TEST(jsonl, buffered_drain_preserves_order_and_streaming_writes_through) {
    obs::jsonl_sink buf;
    buf.row("{\"a\":1}");
    buf.row("{\"a\":2}");
    obs::jsonl_sink dst;
    buf.drain_to(dst);
    EXPECT_EQ(buf.rows(), 0u);
    ASSERT_EQ(dst.buffered().size(), 2u);
    EXPECT_EQ(dst.buffered()[0], "{\"a\":1}");

    std::ostringstream out;
    obs::jsonl_sink stream(&out);
    stream.row("{\"b\":1}");
    EXPECT_EQ(out.str(), "{\"b\":1}\n");
    EXPECT_TRUE(stream.buffered().empty());
}

// ---- profiler ---------------------------------------------------------

TEST(profiler, scopes_are_null_safe_and_attribute_exclusively) {
    { obs::profile_scope null_scope(nullptr, obs::subsystem::dma); }  // no-op

    obs::profiler prof;
    {
        obs::profile_scope outer(&prof, obs::subsystem::dma);
        { obs::profile_scope inner(&prof, obs::subsystem::dram); }
    }
    // Attribution is exclusive: per-subsystem times sum to the total.
    double sum = 0.0;
    for (std::size_t s = 0; s < obs::n_subsystems; ++s)
        sum += prof.seconds(static_cast<obs::subsystem>(s));
    EXPECT_NEAR(sum, prof.total_seconds(), 1e-9);
    EXPECT_GE(prof.seconds(obs::subsystem::dram), 0.0);
}

// ---- zero-overhead-off: observed run == bare run ----------------------

sim::experiment_config observed_cfg() {
    sim::experiment_config cfg;
    cfg.pol = sim::policy::camdn_adaptive;
    cfg.workload = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.co_located = 4;
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.arrival_rate_per_ms = 0.8;
    cfg.total_arrivals = 8;
    cfg.admission_queue_limit = 8;
    cfg.seed = 23;
    return cfg;
}

void expect_identical(const sim::experiment_result& a,
                      const sim::experiment_result& b) {
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.dram_total_bytes, b.dram_total_bytes);
    EXPECT_EQ(a.events_executed, b.events_executed);
    ASSERT_EQ(a.completions.size(), b.completions.size());
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
        EXPECT_EQ(a.completions[i].end, b.completions[i].end);
        EXPECT_EQ(a.completions[i].abbr, b.completions[i].abbr);
        EXPECT_EQ(a.completions[i].dram_bytes, b.completions[i].dram_bytes);
    }
}

TEST(zero_overhead_off, observed_run_results_are_bit_identical) {
    const auto bare = sim::run_experiment(observed_cfg());

    obs::trace_recorder trace(0);
    trace.set_chunk_events(true);  // max granularity, still observation-only
    obs::metrics_registry metrics;
    obs::jsonl_sink epochs;
    obs::profiler prof;
    auto cfg = observed_cfg();
    cfg.obs.trace = &trace;
    cfg.obs.metrics = &metrics;
    cfg.obs.epochs = &epochs;
    cfg.obs.prof = &prof;
    const auto observed = sim::run_experiment(cfg);

    expect_identical(bare, observed);
    // The observers actually saw the run.
    EXPECT_GT(trace.size(), 0u);
    EXPECT_GT(metrics.counter("sched.completions"), 0u);
    EXPECT_GT(metrics.counter("eq.events_executed"), 0u);
    EXPECT_GT(epochs.rows(), 0u);
    ASSERT_NE(metrics.find_histogram("sched.latency_ms"), nullptr);
    EXPECT_EQ(metrics.find_histogram("sched.latency_ms")->count(),
              bare.completions.size());
}

TEST(zero_overhead_off, snapshot_bytes_are_bit_identical) {
    // Pause both runs at the same mid-run boundary: the snapshot of the
    // observed machine must be byte-equal to the bare machine's (observers
    // are never fingerprinted or serialized).
    const auto cfg = observed_cfg();
    const cycle_t boundary = ms_to_cycles(2.0);

    auto gen_bare = runtime::make_workload_generator(cfg);
    runtime::scheduler bare(cfg, *gen_bare);
    ASSERT_TRUE(bare.run_segment(boundary));

    obs::trace_recorder trace(0);
    obs::metrics_registry metrics;
    auto ocfg = cfg;
    ocfg.obs.trace = &trace;
    ocfg.obs.metrics = &metrics;
    auto gen_obs = runtime::make_workload_generator(ocfg);
    runtime::scheduler observed(ocfg, *gen_obs);
    ASSERT_TRUE(observed.run_segment(boundary));

    EXPECT_EQ(bare.save().encode(), observed.save().encode());
}

TEST(zero_overhead_off, epoch_sampling_thins_rows_without_changing_the_run) {
    auto every1 = observed_cfg();
    obs::jsonl_sink rows1;
    every1.obs.epochs = &rows1;
    every1.obs.epoch_sample_every = 1;
    const auto a = sim::run_experiment(every1);

    auto every4 = observed_cfg();
    obs::jsonl_sink rows4;
    every4.obs.epochs = &rows4;
    every4.obs.epoch_sample_every = 4;
    const auto b = sim::run_experiment(every4);

    expect_identical(a, b);
    EXPECT_GT(rows1.rows(), rows4.rows());
    EXPECT_GE(rows4.rows(), (rows1.rows() + 3) / 4);
}

// ---- cluster observability --------------------------------------------

serve::cluster_config small_fleet() {
    serve::soc_instance_config inst;
    inst.slots = 2;
    inst.admission_queue_limit = 8;
    serve::cluster_config cfg = serve::uniform_cluster(2, inst);
    cfg.models = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.arrival_rate_per_ms = 2.0;
    cfg.total_arrivals = 24;
    cfg.feedback_rounds = 2;
    return cfg;
}

TEST(cluster_obs, trace_and_jsonl_identical_across_pool_widths) {
    const std::string t1 = "test_obs_trace_w1.json";
    const std::string t4 = "test_obs_trace_w4.json";
    const std::string j1 = "test_obs_epochs_w1.jsonl";
    const std::string j4 = "test_obs_epochs_w4.jsonl";

    auto cfg = small_fleet();
    cfg.trace_path = t1;
    cfg.metrics_jsonl_path = j1;
    cfg.threads = 1;
    const auto a = serve::run_cluster(cfg);
    cfg.trace_path = t4;
    cfg.metrics_jsonl_path = j4;
    cfg.threads = 4;
    const auto b = serve::run_cluster(cfg);

    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);

    const std::string trace1 = slurp(t1), trace4 = slurp(t4);
    const std::string rows1 = slurp(j1), rows4 = slurp(j4);
    ASSERT_FALSE(trace1.empty());
    ASSERT_FALSE(rows1.empty());
    EXPECT_EQ(trace1, trace4);
    EXPECT_EQ(rows1, rows4);
    EXPECT_TRUE(valid_json(trace1)) << trace1.substr(0, 200);
    // Every JSONL row is itself valid JSON; fleet_round and metrics rows
    // are present alongside the epoch rows.
    std::istringstream lines(rows1);
    std::string line;
    bool saw_epoch = false, saw_round = false, saw_metrics = false;
    while (std::getline(lines, line)) {
        EXPECT_TRUE(valid_json(line)) << line.substr(0, 200);
        saw_epoch |= line.find("\"type\":\"epoch\"") != std::string::npos;
        saw_round |= line.find("\"type\":\"fleet_round\"") != std::string::npos;
        saw_metrics |= line.find("\"type\":\"metrics\"") != std::string::npos;
    }
    EXPECT_TRUE(saw_epoch);
    EXPECT_TRUE(saw_round);
    EXPECT_TRUE(saw_metrics);

    for (const auto& p : {t1, t4, j1, j4}) std::remove(p.c_str());
}

TEST(cluster_obs, observed_cluster_run_matches_bare_run) {
    const auto bare = serve::run_cluster(small_fleet());

    auto cfg = small_fleet();
    cfg.trace_path = "test_obs_cluster_trace.json";
    cfg.metrics_jsonl_path = "test_obs_cluster_epochs.jsonl";
    const auto observed = serve::run_cluster(cfg);

    EXPECT_EQ(bare.completed, observed.completed);
    EXPECT_EQ(bare.makespan, observed.makespan);
    EXPECT_EQ(bare.events_executed, observed.events_executed);
    EXPECT_EQ(bare.dropped_queue, observed.dropped_queue);
    EXPECT_EQ(bare.fleet_latency_ms.count(), observed.fleet_latency_ms.count());
    EXPECT_DOUBLE_EQ(bare.fleet_latency_ms.p99(),
                     observed.fleet_latency_ms.p99());

    std::remove(cfg.trace_path.c_str());
    std::remove(cfg.metrics_jsonl_path.c_str());
}

TEST(cluster_obs, streaming_quantiles_change_memory_not_the_run) {
    const auto exact = serve::run_cluster(small_fleet());
    auto cfg = small_fleet();
    cfg.streaming_quantiles = true;
    const auto p2 = serve::run_cluster(cfg);

    // Same simulation either way...
    EXPECT_EQ(exact.completed, p2.completed);
    EXPECT_EQ(exact.makespan, p2.makespan);
    EXPECT_EQ(exact.fleet_latency_ms.count(), p2.fleet_latency_ms.count());
    EXPECT_FALSE(exact.fleet_latency_ms.streaming());
    EXPECT_TRUE(p2.fleet_latency_ms.streaming());
    // ...and the streamed estimates stay inside the sample range (the
    // handful of completions here is far too small for a tight P² bound —
    // bench/fleet_scaling quantifies the error at realistic counts).
    EXPECT_DOUBLE_EQ(p2.fleet_latency_ms.min(), exact.fleet_latency_ms.min());
    EXPECT_DOUBLE_EQ(p2.fleet_latency_ms.max(), exact.fleet_latency_ms.max());
    EXPECT_GE(p2.fleet_latency_ms.p50(), exact.fleet_latency_ms.min());
    EXPECT_LE(p2.fleet_latency_ms.p50(), exact.fleet_latency_ms.max());
    EXPECT_THROW(p2.fleet_latency_ms.exact(), std::logic_error);
}

TEST(cluster_obs, streaming_quantiles_deterministic_across_pool_widths) {
    // P² is order-sensitive, so the fleet fold replays a fixed round-major,
    // fleet-order merge sequence regardless of how the sweep pool
    // interleaved the per-SoC sims. Any pool width must therefore produce
    // bit-equal streamed quantiles.
    auto cfg = small_fleet();
    cfg.streaming_quantiles = true;
    cfg.threads = 1;
    const auto a = serve::run_cluster(cfg);
    cfg.threads = 4;
    const auto b = serve::run_cluster(cfg);

    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.fleet_latency_ms.count(), b.fleet_latency_ms.count());
    EXPECT_DOUBLE_EQ(a.fleet_latency_ms.p50(), b.fleet_latency_ms.p50());
    EXPECT_DOUBLE_EQ(a.fleet_latency_ms.p95(), b.fleet_latency_ms.p95());
    EXPECT_DOUBLE_EQ(a.fleet_latency_ms.p99(), b.fleet_latency_ms.p99());
    EXPECT_DOUBLE_EQ(a.fleet_queue_delay_ms.p95(),
                     b.fleet_queue_delay_ms.p95());
}

}  // namespace
}  // namespace camdn

// Unit tests for the NEC access semantics (paper §III-B2): region
// read/write, fill/writeback, bypass, multicast and their timing/stats.
#include <gtest/gtest.h>

#include "cache/shared_cache.h"
#include "dram/dram_system.h"

namespace camdn::cache {
namespace {

struct rig {
    dram::dram_system dram{dram::dram_config{}};
    cache_config cfg{};
    shared_cache cache{cfg, dram};

    rig() {
        // Give task 0 a fully mapped region of 4 pages.
        auto pages = cache.pages().try_allocate(0, 4).value();
        auto& cpt = cache.cpt(0);
        for (std::uint32_t v = 0; v < pages.size(); ++v) cpt.map(v, pages[v]);
    }
};

TEST(nec, region_read_has_cache_latency_no_dram) {
    rig r;
    const cycle_t done = r.cache.region_read(0, 0, 0);
    EXPECT_EQ(r.dram.stats().accesses(), 0u);
    EXPECT_LE(done, r.cfg.hit_latency + 4u);
    EXPECT_EQ(r.cache.stats().region_reads, 1u);
}

TEST(nec, region_write_no_dram) {
    rig r;
    r.cache.region_write(0, 0, 0);
    EXPECT_EQ(r.dram.stats().accesses(), 0u);
    EXPECT_EQ(r.cache.stats().region_writes, 1u);
}

TEST(nec, fill_moves_memory_into_cache) {
    rig r;
    const cycle_t done = r.cache.region_fill(0, 0, mib(1), 0);
    EXPECT_EQ(r.dram.stats().reads, 1u);
    EXPECT_GT(done, static_cast<cycle_t>(r.cfg.hit_latency));
    EXPECT_EQ(r.cache.stats().region_fills, 1u);
}

TEST(nec, writeback_moves_cache_into_memory) {
    rig r;
    r.cache.region_writeback(0, 0, mib(2), 0);
    EXPECT_EQ(r.dram.stats().writes, 1u);
    EXPECT_EQ(r.cache.stats().region_writebacks, 1u);
}

TEST(nec, bypass_skips_the_cache_entirely) {
    rig r;
    const std::uint64_t slices_before = r.cache.stats().slice_busy_cycles;
    r.cache.bypass_read(0, 0, 0);
    r.cache.bypass_write(64, 0, 0);
    EXPECT_EQ(r.cache.stats().slice_busy_cycles, slices_before);
    EXPECT_EQ(r.dram.stats().reads, 1u);
    EXPECT_EQ(r.dram.stats().writes, 1u);
    EXPECT_EQ(r.cache.stats().bypass_reads, 1u);
    EXPECT_EQ(r.cache.stats().bypass_writes, 1u);
}

TEST(nec, multicast_read_counts_combined_requests) {
    rig r;
    r.cache.multicast_read(0, 0, 0, /*group_size=*/4);
    EXPECT_EQ(r.cache.stats().multicast_reads, 1u);
    EXPECT_EQ(r.cache.stats().multicast_combined, 3u);
    EXPECT_EQ(r.dram.stats().accesses(), 0u);
}

TEST(nec, multicast_bypass_read_hits_dram_once) {
    rig r;
    r.cache.multicast_bypass_read(0, 0, 0, 4);
    EXPECT_EQ(r.dram.stats().reads, 1u);  // one combined request, not four
    EXPECT_EQ(r.cache.stats().multicast_combined, 3u);
}

TEST(nec, region_burst_stripes_across_slices) {
    rig r;
    // 8 lines land on 8 distinct slices: total service is ~1 slot + latency,
    // far below 8 serialized slots.
    const cycle_t done = r.cache.region_read_burst(0, 0, 8, 0);
    EXPECT_LE(done, static_cast<cycle_t>(r.cfg.hit_latency) + 2);
    EXPECT_EQ(r.cache.stats().region_reads, 8u);
}

TEST(nec, region_burst_throughput_is_slices_per_cycle) {
    rig r;
    const std::uint64_t lines = 1024;  // 2 pages worth
    const cycle_t done = r.cache.region_read_burst(0, 0, lines, 0);
    // 8 slices at 1 line/cycle: ~lines/8 cycles + latency.
    EXPECT_NEAR(static_cast<double>(done),
                static_cast<double>(lines) / 8.0 + r.cfg.hit_latency,
                8.0);
}

TEST(nec, fill_burst_accounts_dram_and_slices) {
    rig r;
    const std::uint64_t lines = 100;
    r.cache.region_fill_burst(0, 0, mib(4), lines, 0);
    EXPECT_EQ(r.dram.stats().reads, lines);
    EXPECT_EQ(r.cache.stats().region_fills, lines);
}

TEST(nec, writeback_burst_accounts_dram_writes) {
    rig r;
    r.cache.region_writeback_burst(0, 0, mib(4), 64, 0);
    EXPECT_EQ(r.dram.stats().writes, 64u);
}

TEST(nec, bypass_bursts_count_lines) {
    rig r;
    r.cache.bypass_read_burst(0, 32, 0, 0, /*group_size=*/2);
    r.cache.bypass_write_burst(mib(1), 16, 0, 0);
    EXPECT_EQ(r.cache.stats().bypass_reads, 32u);
    EXPECT_EQ(r.cache.stats().bypass_writes, 16u);
    EXPECT_EQ(r.cache.stats().multicast_combined, 32u);  // (2-1)*32
}

TEST(nec, zero_line_bursts_are_no_ops) {
    rig r;
    EXPECT_EQ(r.cache.region_read_burst(0, 0, 0, 123), 123u);
    EXPECT_EQ(r.cache.bypass_write_burst(0, 0, 456, 0), 456u);
    EXPECT_EQ(r.dram.stats().accesses(), 0u);
}

TEST(nec, regions_and_transparent_paths_share_slice_bandwidth) {
    rig r;
    // Saturate slice 0 through the NEC path, then observe a transparent
    // access to the same slice being delayed.
    for (int i = 0; i < 100; ++i) r.cache.region_read(0, 0, 0);
    const auto res = r.cache.transparent_access(0, true, 0, 1);
    EXPECT_GT(res.done, 100u);
}

TEST(nec, per_task_regions_are_isolated_by_cpt) {
    rig r;
    auto pages = r.cache.pages().try_allocate(1, 1).value();
    r.cache.cpt(1).map(0, pages[0]);
    // Same vcaddr, different tasks, different physical placement.
    const pcaddr a = r.cache.cpt(0).translate(0);
    const pcaddr b = r.cache.cpt(1).translate(0);
    EXPECT_TRUE(a.way != b.way || a.set != b.set || a.slice != b.slice);
}

}  // namespace
}  // namespace camdn::cache
